"""Shared strategies and builders for the kernel differential suite.

The kernel parity tests (``test_kernel_parity.py``) and the snapshot
cross-backend matrix (``test_kernel_store_matrix.py``) both generate
arbitrary geosocial networks — cycles allowed, so single- and
multi-vertex SCCs (spatial ones included) occur — plus query regions
that deliberately include degenerate zero-area rectangles.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.geosocial import GeosocialNetwork
from repro.graph import DiGraph

#: Both kernel backends, python (oracle) first.
BACKEND_PAIR = ("python", "numpy")

coordinate = st.floats(
    min_value=0, max_value=10, allow_nan=False, allow_infinity=False
)


@st.composite
def networks(draw, max_vertices: int = 12, max_edges: int = 36):
    """Arbitrary geosocial networks, spatial SCCs possible.

    At least one vertex is always spatial so every index builds; the
    single-vertex case (one spatial vertex, no edges) is reachable.
    """
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = (
        draw(st.lists(st.sampled_from(pairs), unique=True, max_size=max_edges))
        if pairs
        else []
    )
    graph = DiGraph.from_edges(n, edges)
    points: list[Point | None] = []
    for _ in range(n):
        if draw(st.booleans()):
            points.append(Point(draw(coordinate), draw(coordinate)))
        else:
            points.append(None)
    if not any(p is not None for p in points):
        points[0] = Point(draw(coordinate), draw(coordinate))
    return GeosocialNetwork(graph, points)


@st.composite
def regions(draw):
    """Query rectangles; roughly a quarter are degenerate (zero-area)."""
    if draw(st.integers(min_value=0, max_value=3)) == 0:
        x = draw(coordinate)
        y = draw(coordinate)
        return Rect(x, y, x, y)
    x1, x2 = sorted((draw(coordinate), draw(coordinate)))
    y1, y2 = sorted((draw(coordinate), draw(coordinate)))
    return Rect(x1, y1, x2, y2)


def region_on(point: Point) -> Rect:
    """The zero-area rectangle sitting exactly on ``point``."""
    return Rect(point.x, point.y, point.x, point.y)


def churn_network(seed: int, n: int = 60, edges: int = 140) -> GeosocialNetwork:
    """A deterministic random network sized for database churn tests."""
    rng = random.Random(seed)
    points: list[Point | None] = []
    kinds: list[str] = []
    for _ in range(n):
        if rng.random() < 0.4:
            points.append(Point(rng.random() * 10, rng.random() * 10))
            kinds.append("venue")
        else:
            points.append(None)
            kinds.append("user")
    if "venue" not in kinds:
        points[0] = Point(5.0, 5.0)
        kinds[0] = "venue"
    graph = DiGraph(n)
    seen: set[tuple[int, int]] = set()
    for _ in range(edges):
        u, v = rng.randrange(n), rng.randrange(n)
        # Database edges always leave a user (venues are sinks).
        if u != v and kinds[u] == "user" and (u, v) not in seen:
            seen.add((u, v))
            graph.add_edge(u, v)
    return GeosocialNetwork(graph, points, kinds=kinds, name=f"churn-{seed}")


def apply_churn(databases, ops) -> None:
    """Apply one write stream to every database in ``databases``.

    ``ops`` is a sequence of ``(op, u, v)`` with op in
    ``{"follow", "checkin", "unfollow", "uncheckin"}``; invalid writes
    (wrong vertex kinds, missing edges) are skipped identically for all.
    """
    for op, u, v in ops:
        for db in databases:
            try:
                if op == "follow":
                    db.add_follow(u, v)
                elif op == "checkin":
                    db.add_checkin(u, v)
                elif op == "unfollow":
                    db.remove_follow(u, v)
                else:
                    db.remove_checkin(u, v)
            except (ValueError, IndexError):
                pass


@st.composite
def churn_ops(draw, num_vertices: int, max_ops: int = 30):
    """A random write stream over vertex ids ``0..num_vertices-1``."""
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_ops))):
        op = draw(
            st.sampled_from(("follow", "checkin", "unfollow", "uncheckin"))
        )
        u = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        v = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        ops.append((op, u, v))
    return ops
