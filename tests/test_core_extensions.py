"""Unit tests for repro.core.extensions (extended query family)."""

import random

import pytest

from helpers import (
    FIG1_INDEX,
    FIG1_REGION,
    fig1_network,
    random_geosocial_network,
    random_region,
)
from repro.core import GeosocialQueryEngine, RangeReachOracle
from repro.geometry import Point, Rect
from repro.geosocial import condense_network


@pytest.fixture
def engine():
    return GeosocialQueryEngine(condense_network(fig1_network()))


def test_range_reach_matches_paper_example(engine):
    assert engine.query(FIG1_INDEX["a"], FIG1_REGION) is True
    assert engine.query(FIG1_INDEX["c"], FIG1_REGION) is False


def test_count_paper_example(engine):
    # a reaches exactly e and h inside R.
    assert engine.count(FIG1_INDEX["a"], FIG1_REGION) == 2
    assert engine.count(FIG1_INDEX["c"], FIG1_REGION) == 0


def test_witnesses_paper_example(engine):
    witnesses = engine.witnesses(FIG1_INDEX["a"], FIG1_REGION)
    assert sorted(witnesses) == sorted([FIG1_INDEX["e"], FIG1_INDEX["h"]])


def test_at_least(engine):
    a = FIG1_INDEX["a"]
    assert engine.at_least(a, FIG1_REGION, 0)
    assert engine.at_least(a, FIG1_REGION, 1)
    assert engine.at_least(a, FIG1_REGION, 2)
    assert not engine.at_least(a, FIG1_REGION, 3)
    assert not engine.at_least(FIG1_INDEX["c"], FIG1_REGION, 1)


def test_nearest_basic(engine):
    # From a, the nearest reachable spatial vertex to (4, 6) is e itself.
    vertex, distance = engine.nearest(FIG1_INDEX["a"], Point(4, 6))
    assert vertex == FIG1_INDEX["e"]
    assert distance == 0.0


def test_nearest_prefers_closer_reachable(engine):
    # From j: reachable spatial vertices are g, h, i, f.  Near e's location
    # (4, 6) the closest of those is h at (5, 5).
    vertex, _ = engine.nearest(FIG1_INDEX["j"], Point(4, 6))
    assert vertex == FIG1_INDEX["h"]


def test_nearest_none_when_unreachable(engine):
    # k reaches no spatial vertex.
    assert engine.nearest(FIG1_INDEX["k"], Point(5, 5)) is None


def test_count_matches_oracle_on_random_networks():
    rng = random.Random(41)
    for _ in range(8):
        net = random_geosocial_network(rng, num_vertices=30, num_edges=60)
        oracle = RangeReachOracle(net)
        engine = GeosocialQueryEngine(condense_network(net))
        for _ in range(15):
            v = rng.randrange(net.num_vertices)
            region = random_region(rng)
            expected = oracle.witnesses(v, region)
            assert engine.count(v, region) == len(expected)
            assert sorted(engine.witnesses(v, region)) == sorted(expected)
            assert engine.query(v, region) == bool(expected)
            assert engine.at_least(v, region, len(expected)) is True
            assert engine.at_least(v, region, len(expected) + 1) is False


def test_nearest_matches_brute_force_on_random_networks():
    rng = random.Random(42)
    for _ in range(6):
        net = random_geosocial_network(rng, num_vertices=25, num_edges=50)
        oracle = RangeReachOracle(net)
        engine = GeosocialQueryEngine(condense_network(net))
        whole = net.space()
        big = Rect(whole.xlo - 1, whole.ylo - 1, whole.xhi + 1, whole.yhi + 1)
        for _ in range(10):
            v = rng.randrange(net.num_vertices)
            q = Point(rng.random(), rng.random())
            reachable = oracle.witnesses(v, big)
            got = engine.nearest(v, q)
            if not reachable:
                assert got is None
                continue
            best = min(q.distance_to(net.point_of(w)) for w in reachable)
            assert got is not None
            assert got[1] == pytest.approx(best)


def test_size_bytes_positive(engine):
    assert engine.size_bytes() > 0
