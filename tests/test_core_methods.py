"""Cross-method tests: every RangeReach method must match the BFS oracle.

This is the library's central integration test: all six method/variant
combinations are exercised on the paper's example, on random geosocial
networks (including ones with spatial SCCs), and on small instances of
all four dataset profiles.
"""

import random

import pytest

from helpers import (
    FIG1_INDEX,
    FIG1_REGION,
    fig1_network,
    random_geosocial_network,
    random_region,
)
from repro.core import (
    GeoReach,
    GeoReachParams,
    RangeReachOracle,
    SocReach,
    SpaReach,
    ThreeDReach,
    ThreeDReachRev,
)
from repro.geosocial import condense_network

METHOD_FACTORIES = {
    "spareach-bfl": lambda cn: SpaReach(cn, reach_index="bfl"),
    "spareach-int": lambda cn: SpaReach(cn, reach_index="interval"),
    "spareach-pll": lambda cn: SpaReach(cn, reach_index="pll"),
    "spareach-grail": lambda cn: SpaReach(cn, reach_index="grail"),
    "spareach-bfl-mbr": lambda cn: SpaReach(cn, reach_index="bfl", scc_mode="mbr"),
    "spareach-int-streaming": lambda cn: SpaReach(
        cn, reach_index="interval", streaming=True
    ),
    "georeach": lambda cn: GeoReach(cn),
    "georeach-tight": lambda cn: GeoReach(
        cn, GeoReachParams(max_reach_grids=2, merge_count=1, grid_levels=4)
    ),
    "socreach": lambda cn: SocReach(cn),
    "3dreach": lambda cn: ThreeDReach(cn),
    "3dreach-mbr": lambda cn: ThreeDReach(cn, scc_mode="mbr"),
    "3dreach-rev": lambda cn: ThreeDReachRev(cn),
    "3dreach-rev-mbr": lambda cn: ThreeDReachRev(cn, scc_mode="mbr"),
}


@pytest.mark.parametrize("name", sorted(METHOD_FACTORIES))
def test_paper_example(name):
    net = fig1_network()
    method = METHOD_FACTORIES[name](condense_network(net))
    assert method.query(FIG1_INDEX["a"], FIG1_REGION) is True
    assert method.query(FIG1_INDEX["c"], FIG1_REGION) is False


@pytest.mark.parametrize("name", sorted(METHOD_FACTORIES))
def test_agrees_with_oracle_on_random_networks(name):
    rng = random.Random(hash(name) & 0xFFFF)
    factory = METHOD_FACTORIES[name]
    for round_ in range(6):
        net = random_geosocial_network(rng, num_vertices=35, num_edges=80)
        oracle = RangeReachOracle(net)
        method = factory(condense_network(net))
        for _ in range(25):
            v = rng.randrange(net.num_vertices)
            region = random_region(rng)
            expected = oracle.query(v, region)
            assert method.query(v, region) == expected, (
                f"{name} disagrees on vertex {v}, region {region} "
                f"(round {round_})"
            )


@pytest.mark.parametrize("name", sorted(METHOD_FACTORIES))
def test_agrees_with_oracle_on_dataset_profiles(name, small_datasets):
    factory = METHOD_FACTORIES[name]
    rng = random.Random(4321)
    for dataset_name, net in small_datasets.items():
        oracle = RangeReachOracle(net)
        method = factory(condense_network(net))
        space = net.space()
        for _ in range(15):
            v = rng.randrange(net.num_vertices)
            x1, x2 = sorted((rng.random(), rng.random()))
            y1, y2 = sorted((rng.random(), rng.random()))
            from repro.geometry import Rect

            region = Rect(
                space.xlo + x1 * space.width,
                space.ylo + y1 * space.height,
                space.xlo + x2 * space.width,
                space.ylo + y2 * space.height,
            )
            expected = oracle.query(v, region)
            assert method.query(v, region) == expected, (
                f"{name} disagrees on {dataset_name}: vertex {v}"
            )


@pytest.mark.parametrize("name", sorted(METHOD_FACTORIES))
def test_size_bytes_positive(name):
    method = METHOD_FACTORIES[name](condense_network(fig1_network()))
    assert method.size_bytes() >= 0
