"""Unit tests for repro.core.spareach specifics."""

import pytest

from helpers import FIG1_INDEX, FIG1_REGION, fig1_network
from repro.core import SpaReach
from repro.geosocial import condense_network
from repro.reach import BflReach


@pytest.fixture
def condensed():
    return condense_network(fig1_network())


def test_unknown_reach_index_rejected(condensed):
    with pytest.raises(ValueError, match="unknown reachability index"):
        SpaReach(condensed, reach_index="nope")


def test_unknown_scc_mode_rejected(condensed):
    with pytest.raises(ValueError, match="scc_mode"):
        SpaReach(condensed, scc_mode="banana")


def test_callable_reach_factory(condensed):
    method = SpaReach(condensed, reach_index=BflReach)
    assert method.query(FIG1_INDEX["a"], FIG1_REGION) is True


def test_name_reflects_configuration(condensed):
    assert SpaReach(condensed, "bfl").name == "spareach-bfl"
    assert SpaReach(condensed, "interval").name == "spareach-interval"
    assert SpaReach(condensed, "bfl", scc_mode="mbr").name == "spareach-bfl-mbr"
    assert (
        SpaReach(condensed, "bfl", streaming=True).name
        == "spareach-bfl-streaming"
    )


def test_rtree_indexes_all_spatial_vertices(condensed):
    method = SpaReach(condensed)
    assert len(method.rtree) == 6


def test_mbr_mode_indexes_components(condensed):
    method = SpaReach(condensed, scc_mode="mbr")
    # fig1 is a DAG: every spatial vertex is its own component
    assert len(method.rtree) == 6


def test_streaming_and_materialized_agree(condensed):
    full = SpaReach(condensed, "bfl")
    streaming = SpaReach(condensed, "bfl", streaming=True)
    for name in "abcdefghijkl":
        v = FIG1_INDEX[name]
        assert full.query(v, FIG1_REGION) == streaming.query(v, FIG1_REGION)


def test_size_accounts_for_reach_index(condensed):
    bfl = SpaReach(condensed, "bfl")
    interval = SpaReach(condensed, "interval")
    # BFL stores two 256-bit filters per vertex: strictly bigger here.
    assert bfl.size_bytes() > interval.size_bytes()


def test_mbr_variant_not_smaller(condensed):
    point_based = SpaReach(condensed, "interval")
    mbr_based = SpaReach(condensed, "interval", scc_mode="mbr")
    assert mbr_based.size_bytes() >= point_based.size_bytes()
