"""Property-based end-to-end test: all methods equal the BFS oracle.

Hypothesis generates arbitrary (possibly cyclic) geosocial networks —
spatial vertices may sit inside strongly connected components — plus a
query vertex and region; every RangeReach method must return exactly
what the index-free BFS oracle returns.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    GeoReach,
    RangeReachOracle,
    SocReach,
    SpaReach,
    ThreeDReach,
    ThreeDReachRev,
    build_methods,
)
from repro.geometry import Point, Rect
from repro.geosocial import GeosocialNetwork, condense_network
from repro.graph import DiGraph
from repro.kernels import numpy_available
from repro.pipeline import BuildContext

coordinate = st.floats(
    min_value=0, max_value=10, allow_nan=False, allow_infinity=False
)


@st.composite
def networks(draw, max_vertices=10):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=30)) if pairs else []
    graph = DiGraph.from_edges(n, edges)
    points = []
    for _ in range(n):
        if draw(st.booleans()):
            points.append(Point(draw(coordinate), draw(coordinate)))
        else:
            points.append(None)
    if not any(p is not None for p in points):
        points[0] = Point(draw(coordinate), draw(coordinate))
    return GeosocialNetwork(graph, points)


@st.composite
def regions(draw):
    x1, x2 = sorted((draw(coordinate), draw(coordinate)))
    y1, y2 = sorted((draw(coordinate), draw(coordinate)))
    return Rect(x1, y1, x2, y2)


@given(networks(), st.data())
@settings(max_examples=40, deadline=None)
def test_all_methods_match_oracle(network, data):
    oracle = RangeReachOracle(network)
    condensed = condense_network(network)
    methods = [
        SpaReach(condensed, reach_index="bfl"),
        SpaReach(condensed, reach_index="interval"),
        SpaReach(condensed, reach_index="bfl", scc_mode="mbr"),
        GeoReach(condensed),
        SocReach(condensed),
        ThreeDReach(condensed),
        ThreeDReach(condensed, scc_mode="mbr"),
        ThreeDReachRev(condensed),
        ThreeDReachRev(condensed, scc_mode="mbr"),
    ]
    for _ in range(5):
        v = data.draw(st.integers(min_value=0, max_value=network.num_vertices - 1))
        region = data.draw(regions())
        expected = oracle.query(v, region)
        for method in methods:
            assert method.query(v, region) == expected, (
                f"{method.name} wrong for vertex {v}, region {region}"
            )


_SHARED_NAMES = (
    "spareach-bfl", "spareach-int", "georeach", "socreach",
    "3dreach", "3dreach-rev",
)


@given(networks(), st.data())
@settings(max_examples=25, deadline=None)
def test_shared_context_matches_independent_and_oracle(network, data):
    """Methods built through one BuildContext answer byte-identically to
    independently built ones and to the BFS oracle — and the shared
    build respects the pipeline's construction bounds."""
    oracle = RangeReachOracle(network)
    condensed = condense_network(network)
    context = BuildContext(condensed)
    shared = build_methods(_SHARED_NAMES, context=context)
    independent = {
        name: factory(condensed)
        for name, factory in {
            "spareach-bfl": lambda cn: SpaReach(cn, reach_index="bfl"),
            "spareach-int": lambda cn: SpaReach(cn, reach_index="interval"),
            "georeach": GeoReach,
            "socreach": SocReach,
            "3dreach": ThreeDReach,
            "3dreach-rev": ThreeDReachRev,
        }.items()
    }
    stats = context.stats()
    # Condensation was seeded, never rebuilt; each labeling key built once.
    assert stats["misses"].get("condense", 0) == 0
    assert stats["misses"].get("labeling", 0) == len(context.labeling_builds())
    assert context.labeling_builds() == [
        ("forward", "subtree", 1),
        ("reversed", "subtree", 1),
    ]
    for _ in range(5):
        v = data.draw(st.integers(min_value=0, max_value=network.num_vertices - 1))
        region = data.draw(regions())
        expected = oracle.query(v, region)
        for name in _SHARED_NAMES:
            assert shared[name].query(v, region) == expected, (
                f"shared {name} wrong for vertex {v}, region {region}"
            )
            assert independent[name].query(v, region) == expected, (
                f"independent {name} wrong for vertex {v}, region {region}"
            )


@pytest.mark.parametrize("backend", ["python", "numpy"])
@given(networks(), st.data())
@settings(max_examples=15, deadline=None)
def test_all_methods_match_oracle_under_backend(backend, network, data):
    """Every method equals the oracle under an explicitly pinned kernel
    backend (the pure-python twins and the vectorized kernels alike)."""
    if backend == "numpy" and not numpy_available():
        pytest.skip("numpy backend not importable")
    oracle = RangeReachOracle(network)
    condensed = condense_network(network)
    methods = [
        SpaReach(condensed, reach_index="bfl", kernels=backend),
        SpaReach(condensed, reach_index="bfl", scc_mode="mbr", kernels=backend),
        GeoReach(condensed, kernels=backend),
        SocReach(condensed, kernels=backend),
        ThreeDReach(condensed, kernels=backend),
        ThreeDReach(condensed, scc_mode="mbr", kernels=backend),
        ThreeDReachRev(condensed, kernels=backend),
        ThreeDReachRev(condensed, scc_mode="mbr", kernels=backend),
    ]
    pairs = []
    for _ in range(5):
        v = data.draw(st.integers(min_value=0, max_value=network.num_vertices - 1))
        region = data.draw(regions())
        pairs.append((v, region))
        expected = oracle.query(v, region)
        for method in methods:
            assert method.kernels == backend
            assert method.query(v, region) == expected, (
                f"{method.name} wrong under {backend} for {v}, {region}"
            )
    expected_batch = [oracle.query(v, region) for v, region in pairs]
    for method in methods:
        assert method.query_batch(pairs) == expected_batch, (
            f"{method.name} batch wrong under {backend}"
        )
