"""The /v1 unified envelope, strict field validation, and deprecation.

Covers the versioned query API over both transports (QueryService.v1
directly and HTTP), the strict-envelope 400s (unknown op/method/field,
duplicate JSON keys at any depth — all naming the offending fields and
echoing ``X-Request-Id``), the legacy endpoints' ``Deprecation`` header
plus ``repro_http_deprecated_requests_total``, and /v1 serving against
a :class:`~repro.shard.ShardedDatabase` with ``shard_hint`` routing.
"""

import json
import urllib.error
import urllib.request

import pytest
from test_obs_export import parse_exposition

from repro.core import RangeReachOracle
from repro.datasets import make_network
from repro.geometry import Rect
from repro.serve import QueryService, start_server
from repro.shard import ShardedDatabase
from repro.system import GeosocialDatabase


@pytest.fixture(scope="module")
def tiny_net():
    return make_network("gowalla", scale=0.0005, seed=3)


@pytest.fixture
def service(tiny_net):
    database = GeosocialDatabase.from_network(tiny_net)
    service = QueryService(database)
    service.warm_up()
    yield service
    service.close(persist=False)


@pytest.fixture
def server(service):
    server = start_server(service)
    yield server, f"http://127.0.0.1:{server.port}"
    if not server.draining:
        server.drain(persist=False)


@pytest.fixture
def sharded_server(tiny_net):
    database = ShardedDatabase.from_network(tiny_net, shards=4)
    service = QueryService(database)
    service.warm_up()
    server = start_server(service)
    yield server, f"http://127.0.0.1:{server.port}"
    if not server.draining:
        server.drain(persist=False)
    service.close(persist=False)


def _post(base, path, payload, *, raw=None, headers=None):
    data = raw if raw is not None else json.dumps(payload).encode()
    all_headers = {"Content-Type": "application/json"}
    all_headers.update(headers or {})
    request = urllib.request.Request(
        base + path, data=data, headers=all_headers, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read()), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.status, resp.read().decode()


def _space_region(net):
    space = net.space()
    return [space.xlo, space.ylo, space.xhi, space.yhi]


# ----------------------------------------------------------------------
# The envelope: queries, batches, writes
# ----------------------------------------------------------------------
def test_v1_query_methods_match_oracle(server, tiny_net):
    _, base = server
    oracle = RangeReachOracle(tiny_net)
    region = _space_region(tiny_net)
    rect = Rect(*region)
    for vertex in range(0, tiny_net.num_vertices, 9):
        code, body, _ = _post(base, "/v1", {
            "op": "query", "method": "reach",
            "vertex": vertex, "region": region,
        })
        assert (code, body) == (200, {
            "op": "query", "method": "reach",
            "answer": oracle.query(vertex, rect),
        })
    code, body, _ = _post(base, "/v1", {
        "op": "query", "method": "count", "vertex": 0, "region": region,
    })
    assert (code, body["answer"]) == (200, oracle.count(0, rect))
    code, body, _ = _post(base, "/v1", {
        "op": "query", "method": "witnesses", "vertex": 0, "region": region,
    })
    assert code == 200
    assert sorted(body["answer"]) == sorted(oracle.witnesses(0, rect))


def test_v1_method_defaults_to_reach(server, tiny_net):
    _, base = server
    region = _space_region(tiny_net)
    code, body, _ = _post(
        base, "/v1", {"op": "query", "vertex": 0, "region": region}
    )
    assert code == 200
    assert body["method"] == "reach"


def test_v1_batch_with_deadline(server, tiny_net):
    _, base = server
    oracle = RangeReachOracle(tiny_net)
    region = _space_region(tiny_net)
    rect = Rect(*region)
    queries = [[v, region] for v in range(0, tiny_net.num_vertices, 5)]
    code, body, _ = _post(base, "/v1", {
        "op": "batch", "queries": queries, "deadline_ms": 30000,
    })
    assert code == 200
    assert body["op"] == "batch" and body["count"] == len(queries)
    assert body["answers"] == [oracle.query(v, rect) for v, _ in queries]


def test_v1_write_lifecycle(server):
    _, base = server

    def v1(payload):
        return _post(base, "/v1", payload)

    code, user, _ = v1({"op": "write", "method": "add_user"})
    assert code == 200 and user["op"] == "write"
    assert user["method"] == "add_user"
    code, venue, _ = v1({
        "op": "write", "method": "add_venue", "x": 0.5, "y": 0.5,
    })
    assert code == 200
    code, body, _ = v1({
        "op": "write", "method": "add_checkin",
        "user": user["vertex"], "venue": venue["vertex"],
    })
    assert (code, body["added"]) == (200, True)
    code, body, _ = v1({
        "op": "query", "vertex": user["vertex"],
        "region": [0.4, 0.4, 0.6, 0.6],
    })
    assert (code, body["answer"]) == (200, True)
    code, body, _ = v1({
        "op": "write", "method": "remove_checkin",
        "user": user["vertex"], "venue": venue["vertex"],
    })
    assert (code, body["removed"]) == (200, True)
    code, body, _ = v1({
        "op": "query", "vertex": user["vertex"],
        "region": [0.4, 0.4, 0.6, 0.6],
    })
    assert (code, body["answer"]) == (200, False)


def test_v1_accepts_tuple_and_list_regions(server, tiny_net):
    _, base = server
    region = _space_region(tiny_net)
    for form in (region, tuple(region)):
        code, body, _ = _post(base, "/v1", {
            "op": "query", "vertex": 0, "region": list(form),
        })
        assert code == 200


# ----------------------------------------------------------------------
# Strict envelope: 400s that name the problem
# ----------------------------------------------------------------------
def test_v1_unknown_op_400(server):
    _, base = server
    code, body, _ = _post(base, "/v1", {"op": "nope"})
    assert code == 400
    assert "unknown op 'nope'" in body["error"]
    assert "query" in body["error"] and "write" in body["error"]


def test_v1_unknown_method_400(server):
    _, base = server
    code, body, _ = _post(
        base, "/v1", {"op": "write", "method": "drop_table"}
    )
    assert code == 400
    assert "unknown method 'drop_table'" in body["error"]
    assert "add_user" in body["error"]


def test_v1_unknown_fields_400_names_them(server, tiny_net):
    _, base = server
    code, body, headers = _post(base, "/v1", {
        "op": "query", "vertex": 0, "region": _space_region(tiny_net),
        "regoin": [0, 0, 1, 1], "turbo": True,
    }, headers={"X-Request-Id": "v1-unknown-1"})
    assert code == 400
    assert "unknown field(s) for query/reach" in body["error"]
    assert "regoin" in body["error"] and "turbo" in body["error"]
    assert headers.get("X-Request-Id") == "v1-unknown-1"
    assert body["request_id"] == "v1-unknown-1"


def test_v1_duplicate_fields_400_names_them(server):
    _, base = server
    raw = (
        b'{"op": "query", "vertex": 1, "vertex": 2,'
        b' "region": [0, 0, 1, 1]}'
    )
    code, body, headers = _post(
        base, "/v1", None, raw=raw, headers={"X-Request-Id": "v1-dup-1"}
    )
    assert code == 400
    assert "duplicate field(s): vertex" in body["error"]
    assert headers.get("X-Request-Id") == "v1-dup-1"
    assert body["request_id"] == "v1-dup-1"


def test_v1_duplicate_fields_detected_at_any_depth(server):
    _, base = server
    raw = (
        b'{"op": "batch", "queries": [[0, [0, 0, 1, 1]]],'
        b' "deadline_ms": 100, "deadline_ms": 200}'
    )
    code, body, _ = _post(base, "/v1", None, raw=raw)
    assert code == 400
    assert "duplicate field(s): deadline_ms" in body["error"]


def test_v1_malformed_json_400_echoes_request_id(server):
    _, base = server
    code, body, headers = _post(
        base, "/v1", None, raw=b"{not json",
        headers={"X-Request-Id": "v1-bad-json-1"},
    )
    assert code == 400
    assert headers.get("X-Request-Id") == "v1-bad-json-1"
    assert body["request_id"] == "v1-bad-json-1"


def test_v1_validation_errors(server, tiny_net):
    _, base = server
    region = _space_region(tiny_net)
    cases = [
        ({"vertex": 0, "region": region}, "op"),  # missing op
        ({"op": "query", "region": region}, "vertex"),
        ({"op": "query", "vertex": 0, "region": region,
          "deadline_ms": -5}, "deadline_ms"),
        ({"op": "query", "vertex": 10**9, "region": region}, "range"),
        ({"op": "batch", "queries": "nope"}, "queries"),
        ({"op": "batch", "queries": [[0]]}, "queries[0]"),
    ]
    for payload, needle in cases:
        code, body, _ = _post(base, "/v1", payload)
        assert code == 400, payload
        assert needle in body["error"], (payload, body)


# ----------------------------------------------------------------------
# Legacy endpoints: deprecated but unchanged
# ----------------------------------------------------------------------
def test_legacy_endpoints_send_deprecation_header(server, tiny_net):
    _, base = server
    region = _space_region(tiny_net)
    code, text = _get(base, "/metrics")
    _, _, samples = parse_exposition(text)
    before = {
        labels["endpoint"]: float(value)
        for name, labels, value in samples
        if name == "repro_http_deprecated_requests_total"
    }
    legacy = [
        ("/query", {"vertex": 0, "region": region}),
        ("/batch", {"queries": [[0, region]]}),
        ("/write", {"op": "add_user"}),
    ]
    for path, payload in legacy:
        code, _, headers = _post(base, path, payload)
        assert code == 200
        assert headers.get("Deprecation") == "true"
        assert headers.get("Link") == '</v1>; rel="successor-version"'
    # /v1 itself is not deprecated.
    code, _, headers = _post(
        base, "/v1", {"op": "query", "vertex": 0, "region": region}
    )
    assert code == 200
    assert headers.get("Deprecation") is None
    # Each legacy hit lands on the migration counter.
    code, text = _get(base, "/metrics")
    assert code == 200
    _, _, samples = parse_exposition(text)
    after = {
        labels["endpoint"]: float(value)
        for name, labels, value in samples
        if name == "repro_http_deprecated_requests_total"
    }
    for path, _ in legacy:
        assert after.get(path, 0) == before.get(path, 0) + 1, path


# ----------------------------------------------------------------------
# /v1 over a sharded database
# ----------------------------------------------------------------------
def test_v1_sharded_matches_oracle(sharded_server, tiny_net):
    _, base = sharded_server
    oracle = RangeReachOracle(tiny_net)
    region = _space_region(tiny_net)
    rect = Rect(*region)
    for vertex in range(0, tiny_net.num_vertices, 11):
        code, body, _ = _post(base, "/v1", {
            "op": "query", "vertex": vertex, "region": region,
        })
        assert (code, body["answer"]) == (200, oracle.query(vertex, rect))
    queries = [[v, region] for v in range(0, tiny_net.num_vertices, 7)]
    code, body, _ = _post(base, "/v1", {"op": "batch", "queries": queries})
    assert code == 200
    assert body["answers"] == [oracle.query(v, rect) for v, _ in queries]


def test_v1_sharded_shard_hint(sharded_server, tiny_net):
    _, base = sharded_server
    region = _space_region(tiny_net)
    for hint in range(4):
        code, body, _ = _post(base, "/v1", {
            "op": "query", "vertex": 0, "region": region,
            "shard_hint": hint,
        })
        assert code == 200
    code, body, _ = _post(base, "/v1", {
        "op": "query", "vertex": 0, "region": region, "shard_hint": 9,
    })
    assert code == 400
    assert "shard_hint 9 out of range" in body["error"]
    code, body, _ = _post(base, "/v1", {
        "op": "write", "method": "add_user", "shard_hint": 2,
    })
    assert code == 200 and body["method"] == "add_user"
    code, text = _get(base, "/stats")
    stats = json.loads(text)
    assert stats["database"]["shards"] == 4


def test_v1_shard_hint_advisory_on_monolithic(server, tiny_net):
    _, base = server
    code, body, _ = _post(base, "/v1", {
        "op": "query", "vertex": 0, "region": _space_region(tiny_net),
        "shard_hint": 99,
    })
    assert code == 200  # no shards to validate against: advisory no-op
