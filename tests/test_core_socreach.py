"""Unit tests for repro.core.socreach specifics."""

import pytest

from helpers import FIG1_INDEX, FIG1_REGION, fig1_network
from repro.core import SocReach
from repro.geometry import Rect
from repro.geosocial import condense_network
from repro.labeling import build_labeling


@pytest.fixture
def condensed():
    return condense_network(fig1_network())


def test_paper_example_41(condensed):
    # Example 4.1: D(a) hits e inside R; D(c) has no spatial vertex in R.
    method = SocReach(condensed)
    assert method.query(FIG1_INDEX["a"], FIG1_REGION) is True
    assert method.query(FIG1_INDEX["c"], FIG1_REGION) is False


def test_count_descendants(condensed):
    method = SocReach(condensed)
    # |D(a)| = 10 and |D(c)| = 5 in the paper's example.
    assert method.count_descendants(FIG1_INDEX["a"]) == 10
    assert method.count_descendants(FIG1_INDEX["c"]) == 5


def test_accepts_prebuilt_labeling(condensed):
    labeling = build_labeling(condensed.dag)
    method = SocReach(condensed, labeling=labeling)
    assert method.labeling is labeling
    assert method.query(FIG1_INDEX["a"], FIG1_REGION) is True


def test_spatial_query_vertex_counts_itself(condensed):
    method = SocReach(condensed)
    assert method.query(FIG1_INDEX["e"], FIG1_REGION) is True


def test_no_descendant_in_region(condensed):
    method = SocReach(condensed)
    assert method.query(FIG1_INDEX["k"], Rect(0, 0, 100, 100)) is False


def test_size_is_labels_only(condensed):
    method = SocReach(condensed)
    assert method.size_bytes() == method.labeling.size_bytes()
