"""Property-based tests for the dynamic interval labeling.

Hypothesis drives random sequences of vertex additions, edge insertions
(cycle-creating ones must be rejected without corrupting state) and edge
deletions; after every batch the descendant sets must equal BFS truth on
a shadow graph.
"""

from hypothesis import given, settings, strategies as st

from repro.graph import DiGraph
from repro.graph.traversal import all_reachable_sets
from repro.labeling import DynamicIntervalLabeling

# Operations: ("vertex",), ("edge", a, b), ("del", index-into-inserted)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("vertex")),
        st.tuples(
            st.just("edge"),
            st.integers(min_value=0, max_value=11),
            st.integers(min_value=0, max_value=11),
        ),
        st.tuples(st.just("del"), st.integers(min_value=0, max_value=200)),
    ),
    max_size=60,
)


@given(ops)
@settings(max_examples=50, deadline=None)
def test_random_update_sequences_match_bfs(sequence):
    dyn = DynamicIntervalLabeling()
    shadow = DiGraph(0)
    live_edges: list[tuple[int, int]] = []
    for op in sequence:
        if op[0] == "vertex":
            dyn.add_vertex()
            shadow.add_vertex()
        elif op[0] == "edge":
            _, a, b = op
            n = dyn.num_vertices
            if n < 2:
                continue
            a, b = a % n, b % n
            if a == b or (a, b) in live_edges:
                continue
            try:
                dyn.add_edge(a, b)
            except ValueError:
                continue  # cycle rejected; state must stay intact
            shadow.add_edge(a, b)
            live_edges.append((a, b))
        else:
            if not live_edges:
                continue
            a, b = live_edges.pop(op[1] % len(live_edges))
            dyn.remove_edge(a, b)
            shadow.remove_edge(a, b)
    truth = all_reachable_sets(shadow)
    for v in range(shadow.num_vertices):
        assert set(dyn.descendants(v)) == truth[v]
        assert dyn.num_descendants(v) == len(truth[v])


@given(ops)
@settings(max_examples=30, deadline=None)
def test_greach_consistent_with_descendants(sequence):
    dyn = DynamicIntervalLabeling()
    for op in sequence:
        if op[0] == "vertex":
            dyn.add_vertex()
        elif op[0] == "edge" and dyn.num_vertices >= 2:
            n = dyn.num_vertices
            a, b = op[1] % n, op[2] % n
            if a != b:
                try:
                    dyn.add_edge(a, b)
                except ValueError:
                    pass
    n = dyn.num_vertices
    for v in range(n):
        descendants = set(dyn.descendants(v))
        for u in range(n):
            assert dyn.greach(v, u) == (u in descendants)
