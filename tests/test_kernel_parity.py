"""Differential-oracle harness: every numpy kernel vs its python twin.

The pure-python kernels are verbatim repackagings of the original inner
loops, so they are the behavioral oracle; the numpy kernels must agree
with them on *every* generated input — empty slabs and flat ranges,
degenerate zero-area rectangles, single-vertex SCCs, empty candidate
batches, and BFL filters small enough (8 bits) that the vectorized
rule-out leaves plenty of DFS-fallback survivors.  Parity is asserted at
three layers: the bare kernels, the five method classes plus the
extended engine, and the serving databases under a churn stream.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from kernel_helpers import (
    BACKEND_PAIR,
    apply_churn,
    churn_network,
    churn_ops,
    networks,
    region_on,
    regions,
)
from repro.core import (
    GeoReach,
    GeosocialQueryEngine,
    SocReach,
    SpaReach,
    ThreeDReach,
    ThreeDReachRev,
)
from repro.exec import ParallelExecutor
from repro.geosocial import condense_network
from repro.kernels import (
    make_bfl_kernel,
    make_label_kernel,
    make_point_kernel,
    make_segment_kernel,
    make_slab_kernel,
    numpy_available,
    resolve_backend,
)
from repro.pipeline import BuildContext
from repro.reach.bfl import BflReach
from repro.shard import ShardedDatabase
from repro.system import GeosocialDatabase

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not importable"
)


# ----------------------------------------------------------------------
# Kernel-level parity
# ----------------------------------------------------------------------
@given(networks(), st.data())
@settings(max_examples=50, deadline=None)
def test_slab_kernel_parity(network, data):
    """any_in_flat / first_in_flat / any_in_zrange agree on every probe."""
    condensed = condense_network(network)
    context = BuildContext(condensed)
    stride = data.draw(st.integers(min_value=1, max_value=3))
    slabs = context.post_slabs(stride=stride)
    py = make_slab_kernel("python", slabs, stride)
    np_ = make_slab_kernel("numpy", slabs, stride)
    assert py.num_slots == np_.num_slots
    total = len(slabs.xs)
    for _ in range(6):
        region = data.draw(regions())
        # Flat probes, empty ranges (lo == hi) included.
        lo = data.draw(st.integers(min_value=0, max_value=total))
        hi = data.draw(st.integers(min_value=lo, max_value=total))
        assert py.any_in_flat(region, lo, hi) == np_.any_in_flat(
            region, lo, hi
        )
        assert py.first_in_flat(region, lo, hi) == np_.first_in_flat(
            region, lo, hi
        )
        # Cuboid sweeps, including labels covering no whole slot.
        zmax = condensed.num_components + 2
        zlo = data.draw(st.integers(min_value=0, max_value=zmax))
        zhi = data.draw(st.integers(min_value=zlo, max_value=zmax))
        assert py.slot_range(zlo, zhi) == np_.slot_range(zlo, zhi)
        assert py.any_in_zrange(region, zlo, zhi) == np_.any_in_zrange(
            region, zlo, zhi
        )


@given(networks(), st.data())
@settings(max_examples=50, deadline=None)
def test_point_kernel_parity(network, data):
    """Point probes and MBR verification agree for every component."""
    condensed = condense_network(network)
    context = BuildContext(condensed)
    columns = context.columns()
    py = make_point_kernel("python", columns)
    np_ = make_point_kernel("numpy", columns)
    total = len(columns.xs)
    for _ in range(4):
        region = data.draw(regions())
        lo = data.draw(st.integers(min_value=0, max_value=total))
        hi = data.draw(st.integers(min_value=lo, max_value=total))
        assert py.any_contained(region, lo, hi) == np_.any_contained(
            region, lo, hi
        )
        assert py.first_contained(region, lo, hi) == np_.first_contained(
            region, lo, hi
        )
        for component in range(condensed.num_components):
            assert py.component_hits_region(
                condensed, component, region
            ) == np_.component_hits_region(condensed, component, region)


@given(networks(), st.data())
@settings(max_examples=50, deadline=None)
def test_bfl_kernel_parity_with_dfs_fallback(network, data):
    """8-bit filters saturate fast, forcing the DFS-fallback path."""
    condensed = condense_network(network)
    bits = data.draw(st.sampled_from((8, 16, 256)))
    reach = BflReach(condensed.dag, filter_bits=bits, seed=3)
    py = make_bfl_kernel("python", reach)
    np_ = make_bfl_kernel("numpy", reach)
    n = condensed.num_components
    for _ in range(4):
        source = data.draw(st.integers(min_value=0, max_value=n - 1))
        targets = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=0,
                max_size=2 * n,
            )
        )
        assert py.reaches_many(source, targets) == np_.reaches_many(
            source, targets
        )
        assert py.any_reaches(source, targets) == np_.any_reaches(
            source, targets
        )


@given(networks(), st.data())
@settings(max_examples=50, deadline=None)
def test_label_kernel_parity(network, data):
    """covers_many agrees with scalar greach, empty batches included."""
    condensed = condense_network(network)
    context = BuildContext(condensed)
    labeling = context.labeling()
    py = make_label_kernel("python", labeling)
    np_ = make_label_kernel("numpy", labeling)
    n = condensed.num_components
    for _ in range(4):
        source = data.draw(st.integers(min_value=0, max_value=n - 1))
        targets = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=0,
                max_size=2 * n,
            )
        )
        assert py.covers_many(source, targets) == np_.covers_many(
            source, targets
        )


@given(networks(), st.data())
@settings(max_examples=50, deadline=None)
def test_segment_kernel_parity(network, data):
    """Slab-at-z sweeps agree, out-of-range z included."""
    condensed = condense_network(network)
    context = BuildContext(condensed)
    labeling = context.reversed_labeling()
    py = make_segment_kernel("python", condensed, labeling)
    np_ = make_segment_kernel("numpy", condensed, labeling)
    assert py.num_segments == np_.num_segments
    zmax = condensed.num_components + 2
    for _ in range(6):
        region = data.draw(regions())
        z = data.draw(st.integers(min_value=-1, max_value=zmax))
        assert py.any_at(region, z) == np_.any_at(region, z)


def test_empty_slab_columns():
    """A network with one isolated spatial vertex: minimal slabs, empty
    probes, and the degenerate rect sitting exactly on the point."""
    from repro.geometry import Point
    from repro.geosocial import GeosocialNetwork
    from repro.graph import DiGraph

    network = GeosocialNetwork(DiGraph(1), [Point(2.0, 3.0)])
    condensed = condense_network(network)
    context = BuildContext(condensed)
    slabs = context.post_slabs()
    for backend in BACKEND_PAIR:
        kernel = make_slab_kernel(backend, slabs, 1)
        hit = region_on(Point(2.0, 3.0))
        miss = region_on(Point(2.0, 3.5))
        assert kernel.any_in_flat(hit, 0, len(slabs.xs)) is True
        assert kernel.any_in_flat(miss, 0, len(slabs.xs)) is False
        assert kernel.any_in_flat(hit, 0, 0) is False
        assert kernel.first_in_flat(hit, 0, 0) == -1


# ----------------------------------------------------------------------
# Method-level parity (numpy vs python twins of every method class)
# ----------------------------------------------------------------------
def _method_pairs(condensed):
    """(name, python_instance, numpy_instance) for every method class."""
    builders = [
        ("socreach", lambda k: SocReach(condensed, kernels=k)),
        (
            "socreach-stride2",
            lambda k: SocReach(condensed, stride=2, kernels=k),
        ),
        ("georeach", lambda k: GeoReach(condensed, kernels=k)),
        ("spareach-bfl", lambda k: SpaReach(condensed, kernels=k)),
        (
            "spareach-mbr",
            lambda k: SpaReach(condensed, scc_mode="mbr", kernels=k),
        ),
        ("3dreach", lambda k: ThreeDReach(condensed, kernels=k)),
        (
            "3dreach-mbr",
            lambda k: ThreeDReach(condensed, scc_mode="mbr", kernels=k),
        ),
        ("3dreach-rev", lambda k: ThreeDReachRev(condensed, kernels=k)),
        (
            "3dreach-rev-mbr",
            lambda k: ThreeDReachRev(condensed, scc_mode="mbr", kernels=k),
        ),
        ("engine", lambda k: GeosocialQueryEngine(condensed, kernels=k)),
    ]
    return [
        (name, build("python"), build("numpy")) for name, build in builders
    ]


@given(networks(), st.data())
@settings(max_examples=25, deadline=None)
def test_methods_match_python_twin(network, data):
    condensed = condense_network(network)
    pairs = [
        (
            data.draw(
                st.integers(min_value=0, max_value=network.num_vertices - 1)
            ),
            data.draw(regions()),
        )
        for _ in range(6)
    ]
    for name, py, np_ in _method_pairs(condensed):
        assert py.kernels == "python" and np_.kernels == "numpy"
        for v, region in pairs:
            assert py.query(v, region) == np_.query(v, region), (
                f"{name} disagrees for vertex {v}, region {region}"
            )
        assert py.query_batch(pairs) == np_.query_batch(pairs), (
            f"{name} batch disagrees"
        )


@given(networks(), st.data())
@settings(max_examples=25, deadline=None)
def test_engine_reaches_many_parity(network, data):
    condensed = condense_network(network)
    py = GeosocialQueryEngine(condensed, kernels="python")
    np_ = GeosocialQueryEngine(condensed, kernels="numpy")
    n = network.num_vertices
    for _ in range(4):
        u = data.draw(st.integers(min_value=0, max_value=n - 1))
        targets = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=0,
                max_size=12,
            )
        )
        expected = [py.reaches(u, t) for t in targets]
        assert py.reaches_many(u, targets) == expected
        assert np_.reaches_many(u, targets) == expected


# ----------------------------------------------------------------------
# Database-level parity under churn (overlay + rebuild paths)
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2 ** 16), st.data())
@settings(max_examples=15, deadline=None)
def test_database_churn_parity(seed, data):
    """Both backends answer identically before, during, and after churn.

    A low refresh threshold makes the stream cross the rebuild boundary,
    so the overlay (frontier) path and the clean-snapshot path both run.
    """
    network = churn_network(seed, n=30, edges=60)
    py = GeosocialDatabase.from_network(
        network, refresh_threshold=8, kernels="python"
    )
    np_ = GeosocialDatabase.from_network(
        network, refresh_threshold=8, kernels="numpy"
    )
    n = network.num_vertices
    queries = [
        (
            data.draw(st.integers(min_value=0, max_value=n - 1)),
            data.draw(regions()),
        )
        for _ in range(8)
    ]
    assert py.range_reach_many(queries) == np_.range_reach_many(queries)
    ops = data.draw(churn_ops(n))
    apply_churn((py, np_), ops)
    assert py.range_reach_many(queries) == np_.range_reach_many(queries)
    for _ in range(3):
        u = data.draw(st.integers(min_value=0, max_value=n - 1))
        targets = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=0,
                max_size=8,
            )
        )
        expected = [py.reaches(u, t) for t in targets]
        assert py.reaches_many(u, targets) == expected
        assert np_.reaches_many(u, targets) == expected


@given(st.integers(min_value=0, max_value=2 ** 16), st.data())
@settings(max_examples=10, deadline=None)
def test_sharded_database_parity(seed, data):
    """Scatter-gather answers match across backends and the monolith."""
    network = churn_network(seed, n=40, edges=90)
    mono = GeosocialDatabase.from_network(network, kernels="python")
    shard_py = ShardedDatabase.from_network(
        network, shards=3, kernels="python"
    )
    shard_np = ShardedDatabase.from_network(network, shards=3, kernels="numpy")
    assert shard_py.kernels == "python" and shard_np.kernels == "numpy"
    n = network.num_vertices
    queries = [
        (
            data.draw(st.integers(min_value=0, max_value=n - 1)),
            data.draw(regions()),
        )
        for _ in range(8)
    ]
    expected = mono.range_reach_many(queries)
    assert shard_py.range_reach_many(queries) == expected
    assert shard_np.range_reach_many(queries) == expected
    # Both planners issued (and counted) the same boundary probes.
    assert (
        shard_py.stats()["scatter"]["boundary_probes"]
        == shard_np.stats()["scatter"]["boundary_probes"]
    )


# ----------------------------------------------------------------------
# Batched / parallel / overlay smoke under each backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKEND_PAIR)
def test_parallel_and_overlay_paths(backend):
    import random

    from repro.geometry import Rect

    network = churn_network(99, n=50, edges=120)
    kinds = list(network.kinds)
    database = GeosocialDatabase.from_network(
        network, refresh_threshold=4, kernels=backend
    )
    assert database.kernels == backend
    assert database.stats()["kernels"] == backend
    rng = random.Random(5)
    n = network.num_vertices
    queries = [
        (rng.randrange(n), Rect(0.0, 0.0, rng.uniform(1, 9), rng.uniform(1, 9)))
        for _ in range(32)
    ]
    sequential = database.range_reach_many(queries)
    executor = ParallelExecutor(workers=3)
    try:
        assert executor.run(database, queries) == sequential
    finally:
        executor.close()
    # Push the database into overlay mode and query through it again.
    users = [v for v in range(n) if kinds[v] == "user"]
    venues = [v for v in range(n) if kinds[v] == "venue"]
    database.add_checkin(users[0], venues[0])
    overlay = database.range_reach_many(queries)
    database.refresh()
    assert database.range_reach_many(queries) == overlay


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
def test_resolve_backend_rejects_unknown():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("fortran")


def test_resolve_backend_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "python")
    assert resolve_backend(None) == "python"
    monkeypatch.setenv("REPRO_KERNELS", "NumPy")
    assert resolve_backend(None) == "numpy"
    monkeypatch.setenv("REPRO_KERNELS", "bogus")
    with pytest.raises(ValueError, match="REPRO_KERNELS"):
        resolve_backend(None)
    # An explicit argument wins over the environment.
    monkeypatch.setenv("REPRO_KERNELS", "python")
    assert resolve_backend("numpy") == "numpy"


def test_context_rejects_unknown_backend():
    network = churn_network(1, n=10, edges=10)
    condensed = condense_network(network)
    with pytest.raises(ValueError, match="unknown kernel backend"):
        BuildContext(condensed, kernels="cython")
