"""Unit tests for gapped post-order numbering (Section 4.1's update gaps)."""

import random

import pytest

from helpers import fig1_graph, random_dag
from repro.graph import DiGraph
from repro.graph.traversal import all_reachable_sets
from repro.labeling import (
    DynamicIntervalLabeling,
    build_labeling,
    load_labeling,
    save_labeling,
)


def test_stride_validation():
    with pytest.raises(ValueError):
        build_labeling(DiGraph(1), post_stride=0)
    with pytest.raises(ValueError):
        DynamicIntervalLabeling(stride=0)


@pytest.mark.parametrize("stride", [1, 4, 16])
@pytest.mark.parametrize("mode", ["subtree", "faithful"])
def test_strided_labeling_preserves_reachability(stride, mode):
    rng = random.Random(61)
    for _ in range(5):
        g = random_dag(rng, 15, edge_probability=0.2)
        labeling = build_labeling(g, mode=mode, post_stride=stride)
        truth = all_reachable_sets(g)
        assert labeling.stride == stride
        for v in range(15):
            assert set(labeling.descendants(v)) == truth[v]
            assert labeling.num_descendants(v) == len(truth[v])
            for u in range(15):
                assert labeling.greach(v, u) == (u in truth[v])


def test_strided_posts_are_multiples():
    labeling = build_labeling(fig1_graph(), post_stride=8)
    assert sorted(labeling.post) == [8 * i for i in range(1, 13)]


def test_stride_weakens_compression():
    # The documented trade-off: gaps block singleton merging.
    g = fig1_graph()
    dense = build_labeling(g).stats()
    gapped = build_labeling(g, post_stride=8).stats()
    assert gapped.compressed_labels >= dense.compressed_labels


def test_strided_round_trip(tmp_path):
    labeling = build_labeling(fig1_graph(), post_stride=4)
    path = tmp_path / "strided.labels"
    save_labeling(labeling, path)
    loaded = load_labeling(path)
    assert loaded.stride == 4
    assert loaded.labels == labeling.labels
    assert set(loaded.descendants(0)) == set(labeling.descendants(0))


def test_strided_methods_still_correct():
    from helpers import FIG1_INDEX, FIG1_REGION, fig1_network
    from repro.core import SocReach, ThreeDReach
    from repro.geosocial import condense_network

    condensed = condense_network(fig1_network())
    labeling = build_labeling(condensed.dag, post_stride=8)
    for method in (
        SocReach(condensed, labeling=labeling),
        ThreeDReach(condensed, labeling=labeling),
    ):
        assert method.query(FIG1_INDEX["a"], FIG1_REGION) is True
        assert method.query(FIG1_INDEX["c"], FIG1_REGION) is False


# ----------------------------------------------------------------------
# Gap insertion in the dynamic labeling
# ----------------------------------------------------------------------
def test_dynamic_gap_insertion():
    g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
    dyn = DynamicIntervalLabeling(g, stride=16)
    # posts are 16, 32, 48 (chain numbering ascending from the sink);
    # every multiple-of-16 is taken, but the gap numbers are free *unless*
    # covered by a label.  L(0) covers [16, 48], so gaps inside it are
    # rejected; a number past the tail's coverage works.
    with pytest.raises(ValueError, match="covered"):
        dyn.add_vertex_at(24)
    fresh = dyn.add_vertex_at(60)
    assert dyn.post_of(fresh) == 60
    dyn.add_edge(1, fresh)
    assert dyn.greach(0, fresh)
    assert dyn.greach(1, fresh)
    assert not dyn.greach(2, fresh)


def test_dynamic_gap_insertion_between_trees():
    # Two disjoint chains: gaps between their post ranges are not covered.
    g = DiGraph.from_edges(4, [(0, 1), (2, 3)])
    dyn = DynamicIntervalLabeling(g, stride=10)
    taken = sorted(dyn.post_of(v) for v in range(4))
    # find an uncovered gap number
    candidate = None
    for p in range(1, taken[-1] + 10):
        if p in taken:
            continue
        try:
            candidate = dyn.add_vertex_at(p)
            break
        except ValueError:
            continue
    assert candidate is not None
    dyn.add_edge(candidate, 0)
    assert dyn.greach(candidate, 1)


def test_dynamic_gap_duplicate_post_rejected():
    dyn = DynamicIntervalLabeling(stride=4)
    dyn.add_vertex()  # post 4
    with pytest.raises(ValueError, match="already assigned"):
        dyn.add_vertex_at(4)
    with pytest.raises(ValueError, match="positive"):
        dyn.add_vertex_at(0)


def test_dynamic_strided_matches_truth_under_growth():
    rng = random.Random(62)
    target = random_dag(rng, 12, edge_probability=0.25)
    dyn = DynamicIntervalLabeling(stride=8)
    for _ in range(12):
        dyn.add_vertex()
    edges = list(target.edges())
    rng.shuffle(edges)
    for s, t in edges:
        dyn.add_edge(s, t)
    truth = all_reachable_sets(target)
    for v in range(12):
        assert set(dyn.descendants(v)) == truth[v]
        assert dyn.num_descendants(v) == len(truth[v])
