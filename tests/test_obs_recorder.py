"""Unit tests for the flight recorder (repro.obs.recorder).

The recorder is driven with hand-built traces whose span timings are
set directly, so retention policies (K-slowest eviction, error ring,
deterministic sampling) are exercised with exact, deterministic
durations rather than wall-clock noise.
"""

import io
import json

import pytest

from repro.obs import FlightRecorder
from repro.obs.trace import Span, Trace


def make_trace(
    duration: float,
    *,
    trace_id: str,
    stages: dict[str, float] | None = None,
    name: str = "/query",
) -> Trace:
    root = Span(name)
    root.start = 0.0
    root.end = duration
    offset = 0.0
    for stage, seconds in (stages or {}).items():
        child = Span(stage)
        child.start = offset
        child.end = offset + seconds
        offset = child.end
        root.children.append(child)
    return Trace(root, trace_id=trace_id)


def record_one(
    recorder: FlightRecorder,
    duration: float,
    *,
    trace_id: str,
    status: int = 200,
    error: str | None = None,
    stages: dict[str, float] | None = None,
):
    return recorder.record_trace(
        make_trace(duration, trace_id=trace_id, stages=stages),
        endpoint="/query",
        status=status,
        started=1000.0,
        error=error,
    )


def test_slowest_keeps_k_and_evicts_fastest():
    recorder = FlightRecorder(slow_k=3)
    for i, duration in enumerate([0.05, 0.01, 0.04, 0.03, 0.02]):
        record_one(recorder, duration, trace_id=f"t{i}")
    slow = recorder.slowest()
    # 0.05, 0.04, 0.03 survive; 0.01 and 0.02 were displaced/never kept.
    assert [e["duration_s"] for e in slow] == [0.05, 0.04, 0.03]
    assert [e["trace_id"] for e in slow] == ["t0", "t2", "t3"]
    assert recorder.stats()["slow_kept"] == 3


def test_errored_requests_always_retained():
    recorder = FlightRecorder(slow_k=1, errors_n=8)
    record_one(recorder, 1.0, trace_id="slow-ok")
    # Fast but errored: displaced from "slow", still in the error ring.
    record_one(recorder, 0.001, trace_id="fast-500", status=500)
    record_one(recorder, 0.002, trace_id="fast-exc", error="boom")
    errors = recorder.errors()
    assert [e["trace_id"] for e in errors] == ["fast-exc", "fast-500"]
    assert errors[0]["error"] == "boom"
    assert recorder.stats()["errors_seen"] == 2
    # A 4xx counts as errored too (client got a failure response).
    record_one(recorder, 0.003, trace_id="bad-400", status=400)
    assert recorder.errors(limit=1)[0]["trace_id"] == "bad-400"


def test_recent_ring_is_bounded_and_newest_first():
    recorder = FlightRecorder(recent_n=4)
    for i in range(10):
        record_one(recorder, 0.01, trace_id=f"r{i}")
    recent = recorder.recent()
    assert [e["trace_id"] for e in recent] == ["r9", "r8", "r7", "r6"]
    assert recorder.stats()["recent_kept"] == 4
    assert recorder.recorded == 10


def test_sampling_is_deterministic_every_nth():
    recorder = FlightRecorder(sample_every=3)
    for i in range(1, 10):  # seq numbers 1..9
        record_one(recorder, 0.01, trace_id=f"s{i}")
    sampled = recorder.sampled()
    # Requests with seq 3, 6, 9 land in the sample ring (newest first).
    assert [e["trace_id"] for e in sampled] == ["s9", "s6", "s3"]


def test_find_searches_every_pool():
    recorder = FlightRecorder(slow_k=2, recent_n=2, errors_n=2)
    record_one(recorder, 5.0, trace_id="only-slow")
    for i in range(3):
        record_one(recorder, 0.01, trace_id=f"fill{i}")
    record_one(recorder, 0.01, trace_id="bad", status=503)
    # "only-slow" fell out of the recent ring but survives in the heap.
    assert recorder.find("only-slow")["duration_s"] == 5.0
    assert recorder.find("bad")["status"] == 503
    assert recorder.find("no-such-id") is None


def test_stage_attribution_and_serialization():
    entry = record_one(
        FlightRecorder(),
        0.1,
        trace_id="abc",
        stages={"parse": 0.01, "exec": 0.08},
    )
    out = entry.to_dict()
    assert out["stages_s"] == {"exec": 0.08, "parse": 0.01}
    assert out["unattributed_s"] == pytest.approx(0.01)
    assert out["trace"]["trace_id"] == "abc"
    assert "trace" not in entry.to_dict(include_trace=False)


def test_access_log_writes_jsonl_without_span_tree():
    sink = io.StringIO()
    recorder = FlightRecorder(access_log=sink)
    record_one(recorder, 0.02, trace_id="log1", stages={"exec": 0.015})
    record_one(recorder, 0.03, trace_id="log2", status=500)
    lines = [json.loads(line) for line in sink.getvalue().splitlines()]
    assert [line["trace_id"] for line in lines] == ["log1", "log2"]
    assert lines[0]["stages_s"]["exec"] == 0.015
    assert all("trace" not in line for line in lines)


def test_dead_access_log_never_fails_recording():
    sink = io.StringIO()
    recorder = FlightRecorder(access_log=sink)
    sink.close()  # writes now raise ValueError
    record_one(recorder, 0.01, trace_id="after-death")
    assert recorder.find("after-death") is not None


def test_close_is_idempotent_and_recording_continues(tmp_path):
    path = tmp_path / "access.jsonl"
    recorder = FlightRecorder(access_log=str(path))
    record_one(recorder, 0.01, trace_id="before")
    recorder.close()
    recorder.close()
    record_one(recorder, 0.01, trace_id="after")
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 1  # only the pre-close request was logged
    assert recorder.find("after") is not None


def test_retention_bounds_validated():
    with pytest.raises(ValueError):
        FlightRecorder(slow_k=0)
    with pytest.raises(ValueError):
        FlightRecorder(sample_every=0)


def test_stats_schema():
    recorder = FlightRecorder(slow_k=5, sample_every=2)
    record_one(recorder, 0.01, trace_id="x")
    record_one(recorder, 0.01, trace_id="y", status=500)
    assert recorder.stats() == {
        "recorded": 2,
        "errors_seen": 1,
        "slow_kept": 2,
        "recent_kept": 2,
        "sampled_kept": 1,
        "errors_kept": 1,
        "slow_k": 5,
        "sample_every": 2,
    }
