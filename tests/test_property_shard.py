"""Property-based equivalence: ShardedDatabase vs GeosocialDatabase.

Hypothesis drives two suites.  The first builds a random static network
and checks every vertex against the BFS oracle for 2/4/8-shard layouts,
including regions small enough to leave every shard pruned.  The second
replays a mixed read/write churn stream against a sharded and an
unsharded database side by side — vertex ids are assigned identically,
so every answer (boolean, witness lists, counts) must match, and the
oracle recomputed from the monolithic raw state arbitrates both.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core import RangeReachOracle
from repro.geometry import Point, Rect
from repro.geosocial import GeosocialNetwork
from repro.graph import DiGraph
from repro.shard import ShardedDatabase
from repro.system import GeosocialDatabase

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

shard_counts = st.sampled_from([2, 4, 8])


# ----------------------------------------------------------------------
# Static networks: partition + scatter vs the oracle
# ----------------------------------------------------------------------
networks = st.builds(
    lambda venue_xy, edge_ix: (venue_xy, edge_ix),
    st.lists(st.tuples(unit, unit), min_size=1, max_size=8),
    st.lists(st.tuples(st.integers(0, 13), st.integers(0, 13)), max_size=30),
)


def _make_network(venue_xy, edge_ix, users=6):
    n = users + len(venue_xy)
    points = [None] * users + [Point(x, y) for x, y in venue_xy]
    kinds = ["user"] * users + ["venue"] * len(venue_xy)
    edges = set()
    for a, b in edge_ix:
        a %= n
        b %= n
        # keep only semantically valid, non-loop edges: user -> any.
        if a != b and a < users:
            edges.add((a, b))
    return GeosocialNetwork(
        DiGraph.from_edges(n, sorted(edges)), points, kinds=kinds
    )


@given(networks, shard_counts, st.tuples(unit, unit, unit, unit))
@settings(max_examples=60, deadline=None)
def test_static_partition_matches_oracle(spec, shards, corners):
    network = _make_network(*spec)
    oracle = RangeReachOracle(network)
    database = ShardedDatabase.from_network(network, shards=shards)
    x1, x2 = sorted(corners[:2])
    y1, y2 = sorted(corners[2:])
    regions = [
        Rect(0.0, 0.0, 1.0, 1.0),
        Rect(x1, y1, x2, y2),  # often misses every venue / every shard
    ]
    pairs = []
    expected = []
    for vertex in range(network.num_vertices):
        for region in regions:
            want = oracle.query(vertex, region)
            assert database.range_reach(vertex, region) == want
            assert database.reachable_venues(vertex, region) == sorted(
                oracle.witnesses(vertex, region)
            )
            pairs.append((vertex, region))
            expected.append(want)
    assert database.range_reach_many(pairs) == expected


# ----------------------------------------------------------------------
# Churn streams: sharded vs unsharded, oracle-arbitrated
# ----------------------------------------------------------------------
churn_ops = st.lists(
    st.one_of(
        st.tuples(st.just("user")),
        st.tuples(st.just("venue"), unit, unit),
        st.tuples(st.just("follow"), st.integers(0, 30), st.integers(0, 30)),
        st.tuples(st.just("checkin"), st.integers(0, 30), st.integers(0, 30)),
        st.tuples(st.just("unfollow"), st.integers(0, 200)),
        st.tuples(st.just("uncheckin"), st.integers(0, 200)),
        st.tuples(st.just("query"), st.integers(0, 60), unit, unit, unit, unit),
    ),
    max_size=30,
)


def _raw_oracle(db: GeosocialDatabase) -> RangeReachOracle:
    graph = DiGraph(db._graph.num_vertices)
    for a, b in db._edges:
        graph.add_edge(a, b)
    return RangeReachOracle(GeosocialNetwork(graph, list(db._points)))


@given(churn_ops, shard_counts, st.sampled_from([0, 3, 64]))
@settings(max_examples=60, deadline=None)
def test_churn_sharded_matches_unsharded(sequence, shards, threshold):
    sharded = ShardedDatabase(shards=shards, refresh_threshold=threshold)
    mono = GeosocialDatabase(refresh_threshold=threshold)
    users: list[int] = []
    venues: list[int] = []
    follows: list[tuple[int, int]] = []
    checkins: list[tuple[int, int]] = []

    for op in sequence:
        kind = op[0]
        if kind == "user":
            assert sharded.add_user() == mono.add_user()
            users.append(mono.num_users + mono.num_venues - 1)
        elif kind == "venue":
            assert sharded.add_venue(op[1], op[2]) == mono.add_venue(
                op[1], op[2]
            )
            venues.append(mono.num_users + mono.num_venues - 1)
        elif kind == "follow" and len(users) >= 2:
            a = users[op[1] % len(users)]
            b = users[op[2] % len(users)]
            added = sharded.add_follow(a, b)
            assert added == mono.add_follow(a, b)
            if added:
                follows.append((a, b))
        elif kind == "checkin" and users and venues:
            u = users[op[1] % len(users)]
            v = venues[op[2] % len(venues)]
            added = sharded.add_checkin(u, v)
            assert added == mono.add_checkin(u, v)
            if added:
                checkins.append((u, v))
        elif kind == "unfollow" and follows:
            a, b = follows.pop(op[1] % len(follows))
            sharded.remove_follow(a, b)
            mono.remove_follow(a, b)
        elif kind == "uncheckin" and checkins:
            u, v = checkins.pop(op[1] % len(checkins))
            sharded.remove_checkin(u, v)
            mono.remove_checkin(u, v)
        elif kind == "query" and venues:
            population = users + venues
            vertex = population[op[1] % len(population)]
            x1, x2 = sorted((op[2], op[3]))
            y1, y2 = sorted((op[4], op[5]))
            region = Rect(x1, y1, x2, y2)
            oracle = _raw_oracle(mono)
            expected_witnesses = sorted(oracle.witnesses(vertex, region))
            assert sharded.range_reach(vertex, region) == mono.range_reach(
                vertex, region
            ) == bool(expected_witnesses)
            assert sharded.reachable_venues(vertex, region) == (
                expected_witnesses
            )
            assert sharded.count_reachable(vertex, region) == len(
                expected_witnesses
            )
            k = len(expected_witnesses)
            assert sharded.reaches_at_least(vertex, region, k) is True
            assert sharded.reaches_at_least(vertex, region, k + 1) is False
            hint = vertex % shards
            assert sharded.range_reach(
                vertex, region, shard_hint=hint
            ) == bool(expected_witnesses)

    # Final sweep: batch path over the full space and a slim stripe.
    if venues:
        population = users + venues
        for region in (Rect(0.0, 0.0, 1.0, 1.0), Rect(0.0, 0.0, 0.1, 1.0)):
            oracle = _raw_oracle(mono)
            pairs = [(v, region) for v in population]
            assert sharded.range_reach_many(pairs) == [
                bool(oracle.witnesses(v, region)) for v in population
            ]
    assert sharded.num_users == mono.num_users
    assert sharded.num_venues == mono.num_venues
    assert sharded.num_edges == mono.num_edges
