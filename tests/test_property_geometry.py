"""Property-based tests for the geometry primitives."""

from hypothesis import given, settings, strategies as st

from repro.geometry import Box3, Point, Rect

coordinate = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coordinate), draw(coordinate)))
    y1, y2 = sorted((draw(coordinate), draw(coordinate)))
    return Rect(x1, y1, x2, y2)


@st.composite
def boxes(draw):
    x1, x2 = sorted((draw(coordinate), draw(coordinate)))
    y1, y2 = sorted((draw(coordinate), draw(coordinate)))
    z1, z2 = sorted((draw(coordinate), draw(coordinate)))
    return Box3(x1, y1, z1, x2, y2, z2)


points = st.builds(Point, coordinate, coordinate)


@given(rects(), rects())
@settings(max_examples=80, deadline=None)
def test_rect_union_contains_both(a, b):
    u = a.union(b)
    assert u.contains_rect(a)
    assert u.contains_rect(b)


@given(rects(), rects())
@settings(max_examples=80, deadline=None)
def test_rect_intersection_consistent_with_intersects(a, b):
    overlap = a.intersection(b)
    assert (overlap is not None) == a.intersects(b)
    if overlap is not None:
        assert a.contains_rect(overlap)
        assert b.contains_rect(overlap)


@given(rects(), points)
@settings(max_examples=80, deadline=None)
def test_point_in_rect_implies_intersections(rect, p):
    if rect.contains_point(p):
        assert rect.intersects(Rect(p.x, p.y, p.x, p.y))
        assert rect.expanded_to(p) == rect


@given(rects(), points)
@settings(max_examples=80, deadline=None)
def test_expanded_to_contains_point(rect, p):
    grown = rect.expanded_to(p)
    assert grown.contains_point(p)
    assert grown.contains_rect(rect)


@given(st.lists(points, min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_from_points_is_tight(pts):
    mbr = Rect.from_points(pts)
    for p in pts:
        assert mbr.contains_point(p)
    assert any(p.x == mbr.xlo for p in pts)
    assert any(p.x == mbr.xhi for p in pts)
    assert any(p.y == mbr.ylo for p in pts)
    assert any(p.y == mbr.yhi for p in pts)


@given(rects(), rects(), rects())
@settings(max_examples=60, deadline=None)
def test_rect_containment_transitive(a, b, c):
    if a.contains_rect(b) and b.contains_rect(c):
        assert a.contains_rect(c)


@given(boxes(), boxes())
@settings(max_examples=80, deadline=None)
def test_box_union_contains_both(a, b):
    u = a.union(b)
    assert u.contains_box(a)
    assert u.contains_box(b)


@given(boxes(), boxes())
@settings(max_examples=80, deadline=None)
def test_box_intersects_symmetric(a, b):
    assert a.intersects(b) == b.intersects(a)


@given(rects(), coordinate, coordinate)
@settings(max_examples=60, deadline=None)
def test_box_from_rect_preserves_base(rect, z1, z2):
    lo, hi = sorted((z1, z2))
    box = Box3.from_rect(rect, lo, hi)
    assert box.base == rect
    assert box.contains_xyz(rect.center.x, rect.center.y, lo)
