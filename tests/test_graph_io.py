"""Unit tests for repro.graph.io."""

import pytest

from repro.geometry import Point
from repro.graph import DiGraph, read_edge_list, write_edge_list
from repro.graph.io import read_point_table, write_point_table


def test_edge_list_round_trip(tmp_path):
    g = DiGraph.from_edges(5, [(0, 1), (1, 2), (4, 0), (2, 2)])
    path = tmp_path / "edges.txt"
    write_edge_list(g, path, header="test graph")
    loaded = read_edge_list(path, num_vertices=5)
    assert sorted(loaded.edges()) == sorted(g.edges())
    assert loaded.num_vertices == 5


def test_edge_list_infers_vertex_count(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("0 7\n3 2\n")
    g = read_edge_list(path)
    assert g.num_vertices == 8
    assert g.has_edge(0, 7)


def test_edge_list_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("# a comment\n\n0 1\n# another\n1 2\n")
    g = read_edge_list(path)
    assert g.num_edges == 2


def test_edge_list_rejects_malformed_line(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("42\n")
    with pytest.raises(ValueError):
        read_edge_list(path)


def test_point_table_round_trip(tmp_path):
    points = {0: Point(1.5, -2.25), 3: Point(0.1, 0.2)}
    path = tmp_path / "points.txt"
    write_point_table(points, path, header="venues")
    loaded = read_point_table(path)
    assert loaded == points


def test_point_table_preserves_float_precision(tmp_path):
    points = {1: Point(0.1 + 0.2, 1e-17)}
    path = tmp_path / "points.txt"
    write_point_table(points, path)
    assert read_point_table(path)[1] == points[1]


def test_point_table_rejects_malformed_line(tmp_path):
    path = tmp_path / "points.txt"
    path.write_text("1 2.0\n")
    with pytest.raises(ValueError):
        read_point_table(path)
