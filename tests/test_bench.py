"""Unit tests for repro.bench (harness, tables, experiments, CLI)."""

import os

import pytest

from repro.bench import format_table
from repro.bench.harness import (
    ALL_DATASETS,
    bench_datasets,
    bench_num_queries,
    bench_scale,
    build_timed,
    get_bundle,
    get_condensed,
    get_network,
    method_names_available,
    time_queries,
)
from repro.bench.tables import mb, us
from repro.core import SocReach
from repro.workloads import Query
from repro.geometry import Rect


SMALL = 0.0005


def test_format_table_alignment():
    out = format_table(
        ["name", "value"], [["a", 1.5], ["longer", 12345.0]], title="T"
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_unit_helpers():
    assert mb(1024 * 1024) == 1.0
    assert us(0.001) == pytest.approx(1000.0)


def test_env_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.01")
    monkeypatch.setenv("REPRO_QUERIES", "7")
    monkeypatch.setenv("REPRO_DATASETS", "yelp, gowalla")
    assert bench_scale() == 0.01
    assert bench_num_queries() == 7
    assert bench_datasets() == ("yelp", "gowalla")


def test_env_datasets_validation(monkeypatch):
    monkeypatch.setenv("REPRO_DATASETS", "nope")
    with pytest.raises(ValueError):
        bench_datasets()


def test_default_datasets(monkeypatch):
    monkeypatch.delenv("REPRO_DATASETS", raising=False)
    assert bench_datasets() == ALL_DATASETS


def test_network_and_condensed_caching():
    a = get_network("weeplaces", SMALL)
    b = get_network("weeplaces", SMALL)
    assert a is b
    ca = get_condensed("weeplaces", SMALL)
    cb = get_condensed("weeplaces", SMALL)
    assert ca is cb
    assert ca.network is a


def test_build_timed():
    condensed = get_condensed("weeplaces", SMALL)
    method, seconds = build_timed(lambda: SocReach(condensed))
    assert isinstance(method, SocReach)
    assert seconds >= 0.0


def test_time_queries_counts_positives():
    condensed = get_condensed("weeplaces", SMALL)
    method = SocReach(condensed)
    net = condensed.network
    whole_space = net.space()
    region = Rect(*whole_space.as_tuple())
    user = 0  # users come first and are connected in weeplaces
    queries = [Query(user, region)] * 5
    avg, positives = time_queries(method, queries)
    assert avg > 0
    assert positives == 5


def test_time_queries_empty_batch_rejected():
    condensed = get_condensed("weeplaces", SMALL)
    with pytest.raises(ValueError):
        time_queries(SocReach(condensed), [])


def test_get_bundle_builds_and_caches():
    bundle = get_bundle("weeplaces", ("socreach", "3dreach"), SMALL)
    assert set(bundle.methods) == {"socreach", "3dreach"}
    assert all(s >= 0 for s in bundle.build_seconds.values())
    again = get_bundle("weeplaces", ("socreach", "3dreach"), SMALL)
    assert again is bundle


def test_method_names_available():
    names = method_names_available()
    assert "spareach-bfl" in names
    assert "3dreach-rev-mbr" in names


def test_experiments_run_end_to_end(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", str(SMALL))
    monkeypatch.setenv("REPRO_QUERIES", "3")
    monkeypatch.setenv("REPRO_DATASETS", "weeplaces")
    from repro.bench.experiments import EXPERIMENTS

    for name, run in EXPERIMENTS.items():
        title, headers, rows = run()
        assert isinstance(title, str)
        assert name.startswith(("table", "fig", "negsplit"))
        assert rows, f"{name} produced no rows"
        text = format_table(headers, rows, title=title)
        assert title in text


def test_cli_main(monkeypatch, capsys):
    from repro.bench.__main__ import main

    code = main(["table3", "--scale", str(SMALL), "--datasets", "weeplaces"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "weeplaces" in out


def test_cli_csv_export(tmp_path, capsys):
    from repro.bench.__main__ import main

    csv_path = tmp_path / "table3.csv"
    code = main([
        "table3", "--scale", str(SMALL), "--datasets", "weeplaces",
        "--csv", str(csv_path),
    ])
    assert code == 0
    content = csv_path.read_text()
    assert content.startswith("# Table 3")
    assert "weeplaces" in content
    assert "dataset" in content  # header row
