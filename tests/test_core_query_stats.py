"""Unit tests for the per-query work counters (repro.obs).

These counters surface the cost drivers the paper's analysis discusses:
SpaReach's candidate/GReach counts, GeoReach's expansion vs pruning,
SocReach's descendant scan length, 3DReach's cuboid count.  They are
flushed to the process-wide metrics registry; the tests read per-query
deltas with ``obs.measure``.
"""

import pytest

from helpers import FIG1_INDEX, FIG1_REGION, fig1_network
from repro import obs
from repro.core import GeoReach, SocReach, SpaReach, ThreeDReach
from repro.geometry import Rect
from repro.geosocial import condense_network


@pytest.fixture
def condensed():
    return condense_network(fig1_network())


def query_delta(method, vertex, region):
    """Run one query, returning (answer, counter deltas)."""
    with obs.measure() as delta:
        answer = method.query(vertex, region)
    return answer, delta


def of(delta, name, method=None):
    key = name if method is None else f'{name}{{method="{method.name}"}}'
    return delta.get(key, 0)


def test_spareach_counts_candidates_and_reach_tests(condensed):
    method = SpaReach(condensed, "bfl")
    # Positive query from a: candidates are e and h; a reaches the first
    # candidate tested, so reach_tests <= candidates.
    answer, delta = query_delta(method, FIG1_INDEX["a"], FIG1_REGION)
    assert answer is True
    assert of(delta, "repro_spareach_candidates_total", method) == 2
    probes = of(delta, "repro_method_label_probes_total", method)
    assert 1 <= probes <= 2
    assert of(delta, "repro_method_queries_total", method) == 1
    assert of(delta, "repro_method_positives_total", method) == 1
    # Negative query from c: both candidates must be reach-tested.
    answer, delta = query_delta(method, FIG1_INDEX["c"], FIG1_REGION)
    assert answer is False
    assert of(delta, "repro_spareach_candidates_total", method) == 2
    assert of(delta, "repro_method_label_probes_total", method) == 2
    assert of(delta, "repro_method_positives_total", method) == 0


def test_spareach_empty_region(condensed):
    method = SpaReach(condensed, "bfl")
    answer, delta = query_delta(
        method, FIG1_INDEX["a"], Rect(100, 100, 101, 101)
    )
    assert answer is False
    assert of(delta, "repro_spareach_candidates_total", method) == 0
    assert of(delta, "repro_method_label_probes_total", method) == 0
    # The R-tree search itself is still accounted.
    assert of(delta, "repro_rtree_searches_total") == 1


def test_georeach_counts_expansion_and_pruning(condensed):
    method = GeoReach(condensed)
    _, delta = query_delta(method, FIG1_INDEX["c"], FIG1_REGION)
    # The negative query from c must explore c's cone: c, d, i, k, f.
    expanded = of(delta, "repro_georeach_vertices_expanded_total")
    assert 1 <= expanded <= 5
    assert of(delta, "repro_georeach_vertices_pruned_total") >= 1


def test_georeach_positive_query_stops_early(condensed):
    method = GeoReach(condensed)
    _, delta = query_delta(method, FIG1_INDEX["a"], FIG1_REGION)
    # TRUE terminates the BFS; it must not visit more than the full cone.
    assert of(delta, "repro_georeach_vertices_expanded_total") <= 10


def test_socreach_scan_counts(condensed):
    method = SocReach(condensed)
    # Negative query from c scans all of D(c) (5 vertices).
    answer, delta = query_delta(method, FIG1_INDEX["c"], FIG1_REGION)
    assert answer is False
    assert of(delta, "repro_socreach_descendants_scanned_total", method) == 5
    # Spatial descendants of c are f and i: two containment tests.
    assert of(delta, "repro_method_candidates_verified_total", method) == 2


def test_socreach_early_exit_shortens_scan(condensed):
    method = SocReach(condensed)
    answer, delta = query_delta(method, FIG1_INDEX["a"], FIG1_REGION)
    assert answer is True
    # |D(a)| = 10, but the scan stops at the witness.
    assert of(delta, "repro_socreach_descendants_scanned_total", method) <= 10


def test_socreach_bptree_counts_spatial_only(condensed):
    method = SocReach(condensed, descendant_access="bptree")
    answer, delta = query_delta(method, FIG1_INDEX["c"], FIG1_REGION)
    assert answer is False
    # The B+-tree skips non-spatial descendants entirely: only f and i.
    assert of(delta, "repro_socreach_descendants_scanned_total", method) == 2
    assert of(delta, "repro_method_candidates_verified_total", method) == 2


def test_threedreach_counts_cuboids(condensed):
    method = ThreeDReach(condensed)
    # A negative query must issue one 3-D range query per label of c
    # (three with the paper's forest, four with our DFS forest — pin it
    # to the labeling actually built).
    c_labels = len(
        method.labeling.labels_of(condensed.super_of(FIG1_INDEX["c"]))
    )
    answer, delta = query_delta(method, FIG1_INDEX["c"], FIG1_REGION)
    assert answer is False
    assert of(delta, "repro_threedreach_cuboid_queries_total") == c_labels
    assert of(delta, "repro_method_label_probes_total", method) == c_labels
    # a's descendants form one contiguous post range -> a single label,
    # and the positive query stops after its first cuboid.
    answer, delta = query_delta(method, FIG1_INDEX["a"], FIG1_REGION)
    assert answer is True
    assert of(delta, "repro_threedreach_cuboid_queries_total") == 1


def test_last_stats_is_gone(condensed):
    """The ad-hoc per-instance dicts were replaced by the registry."""
    for method in (
        SpaReach(condensed, "bfl"),
        GeoReach(condensed),
        SocReach(condensed),
        ThreeDReach(condensed),
    ):
        assert not hasattr(method, "last_stats")
