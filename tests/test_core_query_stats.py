"""Unit tests for the per-query diagnostics counters (last_stats).

These counters surface the cost drivers the paper's analysis discusses:
SpaReach's candidate/GReach counts, GeoReach's expansion vs pruning,
SocReach's descendant scan length, 3DReach's cuboid count.
"""

import pytest

from helpers import FIG1_INDEX, FIG1_REGION, fig1_network
from repro.core import GeoReach, SocReach, SpaReach, ThreeDReach
from repro.geometry import Rect
from repro.geosocial import condense_network


@pytest.fixture
def condensed():
    return condense_network(fig1_network())


def test_spareach_counts_candidates_and_reach_tests(condensed):
    method = SpaReach(condensed, "bfl")
    # Positive query from a: candidates are e and h; a reaches the first
    # candidate tested, so reach_tests <= candidates.
    assert method.query(FIG1_INDEX["a"], FIG1_REGION) is True
    stats = method.last_stats
    assert stats["candidates"] == 2
    assert 1 <= stats["reach_tests"] <= 2
    # Negative query from c: both candidates must be reach-tested.
    assert method.query(FIG1_INDEX["c"], FIG1_REGION) is False
    assert method.last_stats == {"candidates": 2, "reach_tests": 2}


def test_spareach_empty_region(condensed):
    method = SpaReach(condensed, "bfl")
    assert method.query(FIG1_INDEX["a"], Rect(100, 100, 101, 101)) is False
    assert method.last_stats == {"candidates": 0, "reach_tests": 0}


def test_georeach_counts_expansion_and_pruning(condensed):
    method = GeoReach(condensed)
    method.query(FIG1_INDEX["c"], FIG1_REGION)
    stats = method.last_stats
    # The negative query from c must explore c's cone: c, d, i, k, f.
    assert stats["expanded"] >= 1
    assert stats["expanded"] <= 5
    assert stats["pruned"] >= 1


def test_georeach_positive_query_stops_early(condensed):
    method = GeoReach(condensed)
    method.query(FIG1_INDEX["a"], FIG1_REGION)
    positive_expanded = method.last_stats["expanded"]
    method.query(FIG1_INDEX["c"], FIG1_REGION)
    # TRUE terminates the BFS; it must not visit more than the full cone.
    assert positive_expanded <= 10


def test_socreach_scan_counts(condensed):
    method = SocReach(condensed)
    # Negative query from c scans all of D(c) (5 vertices).
    assert method.query(FIG1_INDEX["c"], FIG1_REGION) is False
    assert method.last_stats["descendants_scanned"] == 5
    # Spatial descendants of c are f and i: two containment tests.
    assert method.last_stats["containment_tests"] == 2


def test_socreach_early_exit_shortens_scan(condensed):
    method = SocReach(condensed)
    assert method.query(FIG1_INDEX["a"], FIG1_REGION) is True
    # |D(a)| = 10, but the scan stops at the witness.
    assert method.last_stats["descendants_scanned"] <= 10


def test_socreach_bptree_counts_spatial_only(condensed):
    method = SocReach(condensed, descendant_access="bptree")
    assert method.query(FIG1_INDEX["c"], FIG1_REGION) is False
    # The B+-tree skips non-spatial descendants entirely: only f and i.
    assert method.last_stats["descendants_scanned"] == 2
    assert method.last_stats["containment_tests"] == 2


def test_threedreach_counts_cuboids(condensed):
    method = ThreeDReach(condensed)
    # A negative query must issue one 3-D range query per label of c
    # (three with the paper's forest, four with our DFS forest — pin it
    # to the labeling actually built).
    c_labels = len(method.labeling.labels_of(condensed.super_of(FIG1_INDEX["c"])))
    assert method.query(FIG1_INDEX["c"], FIG1_REGION) is False
    assert method.last_stats["cuboid_queries"] == c_labels
    # a's descendants form one contiguous post range -> a single label,
    # and the positive query stops after its first cuboid.
    assert method.query(FIG1_INDEX["a"], FIG1_REGION) is True
    assert method.last_stats["cuboid_queries"] == 1
