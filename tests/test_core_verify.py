"""Unit tests for repro.core.verify (cross-method checking)."""

import pytest

from helpers import FIG1_INDEX, FIG1_REGION, fig1_network
from repro.core import (
    RangeReachOracle,
    SocReach,
    SpaReach,
    ThreeDReach,
    assert_agreement,
    cross_check,
)
from repro.geometry import Rect
from repro.geosocial import condense_network
from repro.workloads import Query


@pytest.fixture
def setup():
    net = fig1_network()
    condensed = condense_network(net)
    methods = [SpaReach(condensed, "bfl"), SocReach(condensed), ThreeDReach(condensed)]
    oracle = RangeReachOracle(net)
    queries = [
        Query(FIG1_INDEX[name], FIG1_REGION) for name in "abcdefghijkl"
    ] + [Query(FIG1_INDEX["a"], Rect(0, 0, 10, 10))]
    return methods, oracle, queries


def test_agreeing_methods_produce_no_disagreements(setup):
    methods, oracle, queries = setup
    assert cross_check(methods, queries, reference=oracle) == []
    assert_agreement(methods, queries, reference=oracle)


def test_needs_two_answerers(setup):
    methods, _, queries = setup
    with pytest.raises(ValueError):
        cross_check(methods[:1], queries)
    # one method + a reference is fine
    assert cross_check(methods[:1], queries, reference=methods[1]) == []


class _AlwaysTrue:
    name = "always-true"

    def query(self, v, region):
        return True

    def size_bytes(self):
        return 0


def test_detects_broken_method(setup):
    methods, oracle, queries = setup
    broken = _AlwaysTrue()
    disagreements = cross_check([*methods, broken], queries, reference=oracle)
    # every query whose true answer is False must be flagged
    false_queries = sum(
        1 for q in queries if not oracle.query(q.vertex, q.region)
    )
    assert len(disagreements) == false_queries
    sample = disagreements[0]
    assert any(name == "always-true" and ans for name, ans in sample.answers)
    with pytest.raises(AssertionError, match="disagree"):
        assert_agreement([*methods, broken], queries, reference=oracle)
