"""The unified query protocol and the vectorized batch overrides.

Covers the API-level contract (QueryRequest/QueryResult, execute,
deprecation shims, constructor keyword alignment) and the batch
guarantees the overrides must honor: empty batches and label-less
sources never touch the R-tree, and duplicated work is deduplicated
(observable through the obs counters).
"""

import pytest

from repro import obs
from repro.core import (
    GeosocialQueryEngine,
    QueryRequest,
    QueryResult,
    RangeReachBase,
    RangeReachMethod,
    RangeReachOracle,
    SocReach,
    ThreeDReach,
    ThreeDReachRev,
    build_methods,
)
from repro.geometry import Rect
from repro.pipeline import BuildContext

REGION = Rect(0.0, 0.0, 5.0, 5.0)
EMPTY_REGION = Rect(90.0, 90.0, 91.0, 91.0)

ALL_NAMES = (
    "spareach-bfl", "georeach", "socreach", "3dreach", "3dreach-rev",
)


@pytest.fixture
def built(fig1_condensed):
    context = BuildContext(fig1_condensed)
    return build_methods(ALL_NAMES, context=context)


# ----------------------------------------------------------------------
# Protocol surface
# ----------------------------------------------------------------------
def test_query_request_round_trip():
    request = QueryRequest(3, REGION)
    assert request.as_pair() == (3, REGION)


def test_all_methods_satisfy_protocol(built):
    for method in built.values():
        assert isinstance(method, RangeReachMethod)
        assert isinstance(method, RangeReachBase)


def test_database_and_engine_satisfy_protocol(fig1_condensed):
    from repro.system.database import GeosocialDatabase

    engine = GeosocialQueryEngine(fig1_condensed)
    assert isinstance(engine, RangeReachMethod)
    assert isinstance(GeosocialDatabase(), RangeReachBase)


def test_execute_returns_result(built):
    for method in built.values():
        result = method.execute(QueryRequest(0, REGION))
        assert isinstance(result, QueryResult)
        assert result.answer == method.query(0, REGION)
        assert result.method == method.name
        assert result.spans is None


def test_execute_with_trace_attaches_spans(built):
    method = built["3dreach"]
    with obs.observability(True):
        result = method.execute(QueryRequest(0, REGION), trace=True)
    assert result.spans is not None
    names = [node.name for _, node in result.spans.root.walk()]
    assert names[0] == "3dreach.execute"
    assert any("3dreach.query" in name for name in names)


def test_execute_many_matches_query_batch(built):
    requests = [QueryRequest(v, REGION) for v in range(5)]
    requests += [QueryRequest(v, EMPTY_REGION) for v in range(5)]
    for method in built.values():
        results = method.execute_many(requests)
        assert [r.answer for r in results] == method.query_batch(
            [r.as_pair() for r in requests]
        )


def test_default_query_batch_matches_loop(fig1_net):
    oracle = RangeReachOracle(fig1_net)
    pairs = [(v, REGION) for v in range(fig1_net.num_vertices)]
    assert oracle.query_batch(pairs) == [
        oracle.query(v, region) for v, region in pairs
    ]


# ----------------------------------------------------------------------
# Deprecation shims + keyword alignment
# ----------------------------------------------------------------------
def test_engine_range_reach_is_deprecated_alias(fig1_condensed):
    engine = GeosocialQueryEngine(fig1_condensed)
    with pytest.warns(DeprecationWarning, match="use query"):
        deprecated = engine.range_reach(0, REGION)
    assert deprecated == engine.query(0, REGION)


def test_threedreach_rev_reversed_labeling_alias(fig1_condensed):
    from repro.labeling import build_reversed_labeling

    labeling = build_reversed_labeling(fig1_condensed.dag)
    with pytest.warns(DeprecationWarning, match="labeling="):
        via_alias = ThreeDReachRev(fig1_condensed, reversed_labeling=labeling)
    canonical = ThreeDReachRev(fig1_condensed, labeling=labeling)
    for v in range(fig1_condensed.dag.num_vertices):
        assert via_alias.query(v, REGION) == canonical.query(v, REGION)


def test_threedreach_rev_rejects_both_labeling_keywords(fig1_condensed):
    from repro.labeling import build_reversed_labeling

    labeling = build_reversed_labeling(fig1_condensed.dag)
    with pytest.raises(TypeError, match="not both"):
        ThreeDReachRev(
            fig1_condensed, labeling=labeling, reversed_labeling=labeling
        )


def test_stride_keyword_aligned_across_methods(fig1_condensed):
    # The canonical vocabulary: every context-built class accepts
    # mode= and stride= and produces identical answers for stride > 1.
    context = BuildContext(fig1_condensed)
    strided = [
        SocReach(fig1_condensed, stride=4, context=context),
        ThreeDReach(fig1_condensed, stride=4, context=context),
        GeosocialQueryEngine(fig1_condensed, stride=4, context=context),
    ]
    plain = [
        SocReach(fig1_condensed, context=context),
        ThreeDReach(fig1_condensed, context=context),
        GeosocialQueryEngine(fig1_condensed, context=context),
    ]
    for a, b in zip(strided, plain):
        assert a.labeling.stride == 4
        for v in range(fig1_condensed.dag.num_vertices):
            assert a.query(v, REGION) == b.query(v, REGION)


# ----------------------------------------------------------------------
# Batch guards: empty input / label-less sources skip the index
# ----------------------------------------------------------------------
def _rtree_searches() -> float:
    return obs.REGISTRY.counter_samples().get("repro_rtree_searches_total", 0)


def test_empty_batch_touches_nothing(built):
    with obs.observability(True):
        obs.REGISTRY.reset()
        for method in built.values():
            assert method.query_batch([]) == []
        assert _rtree_searches() == 0
        samples = obs.REGISTRY.counter_samples()
        assert all(value == 0 for value in samples.values()), samples


def test_spareach_batch_dedups_regions(built):
    spareach = built["spareach-bfl"]
    pairs = [(v, REGION) for v in range(6)] + [(v, EMPTY_REGION) for v in range(6)]
    with obs.observability(True):
        obs.REGISTRY.reset()
        batched = spareach.query_batch(pairs)
        batch_searches = _rtree_searches()
        obs.REGISTRY.reset()
        sequential = [spareach.query(v, region) for v, region in pairs]
        loop_searches = _rtree_searches()
    assert batched == sequential
    # Two distinct regions -> exactly two R-tree searches, not twelve.
    assert batch_searches == 2
    assert loop_searches == len(pairs)


def test_threedreach_batch_dedups_pairs(built):
    method = built["3dreach"]
    pairs = [(0, REGION)] * 8
    with obs.observability(True):
        obs.REGISTRY.reset()
        answers = method.query_batch(pairs)
        samples = obs.REGISTRY.counter_samples()
    assert answers == [method.query(0, REGION)] * 8
    # One distinct (source, region) work item: the cuboid counter moves
    # as for ONE query, while the query counter reflects all eight.
    assert samples['repro_method_queries_total{method="3dreach"}'] == 8
    single = method._labeling.labels_of(method._network.super_of(0))
    assert samples["repro_threedreach_cuboid_queries_total"] <= len(single)


def test_socreach_batch_empty_labels_guard(fig1_condensed):
    socreach = SocReach(fig1_condensed)
    # A fabricated source with no labels must short-circuit to FALSE.
    assert socreach._flat_ranges  # the scan helper exists
    pairs = [(0, EMPTY_REGION)] * 3
    assert socreach.query_batch(pairs) == [False, False, False]


def test_batch_duplicate_answers_positionally_aligned(built, fig1_net):
    oracle = RangeReachOracle(fig1_net)
    pairs = []
    for v in range(fig1_net.num_vertices):
        pairs.append((v, REGION))
        pairs.append((v, EMPTY_REGION))
    pairs += pairs[:5]
    expected = [oracle.query(v, region) for v, region in pairs]
    for method in built.values():
        assert method.query_batch(pairs) == expected, method.name
