"""Shared test utilities: the paper's running example and random inputs."""

from __future__ import annotations

import random

from repro.geometry import Point, Rect
from repro.geosocial import GeosocialNetwork
from repro.graph import DiGraph

# ----------------------------------------------------------------------
# The paper's running example (Figure 1 / Figure 3 / Table 1)
# ----------------------------------------------------------------------
FIG1_NAMES = list("abcdefghijkl")
FIG1_INDEX = {name: i for i, name in enumerate(FIG1_NAMES)}

# Edges of the geosocial network in Figure 1, reconstructed from the
# spanning forest (Figure 3: tree edges a->b,d,j; b->e,l; e->f; j->g,h;
# c->i,k) and the non-spanning edges listed in Example 3.2
# ((l,h), (b,d), (g,i), (i,f), (c,d)).
FIG1_EDGES = [
    ("a", "b"), ("a", "d"), ("a", "j"),
    ("b", "e"), ("b", "l"), ("b", "d"),
    ("e", "f"),
    ("l", "h"),
    ("j", "g"), ("j", "h"),
    ("g", "i"), ("i", "f"),
    ("c", "i"), ("c", "k"), ("c", "d"),
]

# Spatial vertices of Figure 1; e and h lie inside the query region R,
# the others outside.
FIG1_POINTS = {
    "e": Point(4.0, 6.0),
    "h": Point(5.0, 5.0),
    "f": Point(1.0, 1.0),
    "g": Point(8.0, 2.0),
    "i": Point(9.0, 8.0),
    "l": Point(2.0, 9.0),
}

FIG1_REGION = Rect(3.5, 4.5, 6.0, 7.0)

# The paper's spanning forest (Figure 3) with its post-order numbers
# (Table 1): parent relation and post(.) per vertex name.
FIG1_FOREST_PARENT = {
    "a": None, "b": "a", "d": "a", "j": "a",
    "e": "b", "l": "b", "f": "e", "g": "j", "h": "j",
    "c": None, "i": "c", "k": "c",
}
FIG1_POST = {
    "f": 1, "e": 2, "l": 3, "b": 4, "d": 5, "g": 6,
    "h": 7, "j": 8, "a": 9, "i": 10, "k": 11, "c": 12,
}

# Final compressed labels from Table 1 (the 'final' column), derived from
# the reachable sets: L(v) canonically covers {post(u) : v reaches u}.
FIG1_FINAL_LABELS = {
    "a": [(1, 10)],
    "b": [(1, 5), (7, 7)],
    "c": [(1, 1), (5, 5), (10, 12)],
    "d": [(5, 5)],
    "e": [(1, 2)],
    "f": [(1, 1)],
    "g": [(1, 1), (6, 6), (10, 10)],
    "h": [(7, 7)],
    "i": [(1, 1), (10, 10)],
    "j": [(1, 1), (6, 8), (10, 10)],
    "k": [(11, 11)],
    "l": [(3, 3), (7, 7)],
}


def fig1_graph() -> DiGraph:
    """Return the directed graph of the paper's Figure 1."""
    edges = [(FIG1_INDEX[s], FIG1_INDEX[t]) for s, t in FIG1_EDGES]
    return DiGraph.from_edges(len(FIG1_NAMES), edges)


def fig1_network() -> GeosocialNetwork:
    """Return the geosocial network of the paper's Figure 1."""
    points = [FIG1_POINTS.get(name) for name in FIG1_NAMES]
    return GeosocialNetwork(fig1_graph(), points, name="fig1")


# ----------------------------------------------------------------------
# Random inputs
# ----------------------------------------------------------------------
def random_dag(
    rng: random.Random, num_vertices: int, edge_probability: float = 0.15
) -> DiGraph:
    """Return a random DAG (edges only from lower to higher id)."""
    graph = DiGraph(num_vertices)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def random_digraph(
    rng: random.Random, num_vertices: int, num_edges: int
) -> DiGraph:
    """Return a random directed graph (cycles allowed, no self-loops)."""
    graph = DiGraph(num_vertices)
    seen: set[tuple[int, int]] = set()
    for _ in range(num_edges):
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v and (u, v) not in seen:
            seen.add((u, v))
            graph.add_edge(u, v)
    return graph


def random_geosocial_network(
    rng: random.Random,
    num_vertices: int = 40,
    num_edges: int = 90,
    spatial_fraction: float = 0.5,
) -> GeosocialNetwork:
    """Return a random geosocial network (may contain spatial SCCs).

    Unlike the dataset generators, spatial vertices here can have
    outgoing edges, so strongly connected components can contain points —
    exercising the Section 5 machinery.
    """
    graph = random_digraph(rng, num_vertices, num_edges)
    points: list[Point | None] = [
        Point(rng.random(), rng.random())
        if rng.random() < spatial_fraction
        else None
        for _ in range(num_vertices)
    ]
    if not any(p is not None for p in points):
        points[rng.randrange(num_vertices)] = Point(rng.random(), rng.random())
    return GeosocialNetwork(graph, points, name="random")


def random_region(rng: random.Random) -> Rect:
    """Return a random rectangle inside the unit square."""
    x1, x2 = sorted((rng.random(), rng.random()))
    y1, y2 = sorted((rng.random(), rng.random()))
    return Rect(x1, y1, x2, y2)
