"""Unit tests for repro.spatial.rtree."""

import random

import pytest

from repro.spatial import LinearScanIndex, RTree
from repro.spatial.rtree import (
    bounds_contain,
    bounds_intersect,
    bounds_margin,
    bounds_union,
    bounds_volume,
)


def random_points(rng, n, dims=2):
    return [tuple(rng.random() for _ in range(dims)) for _ in range(n)]


def point_bounds(coords):
    return tuple(coords) + tuple(coords)


# ----------------------------------------------------------------------
# Bounds helpers
# ----------------------------------------------------------------------
def test_bounds_intersect_2d():
    a = (0, 0, 2, 2)
    assert bounds_intersect(a, (1, 1, 3, 3), 2)
    assert bounds_intersect(a, (2, 2, 3, 3), 2)  # touching
    assert not bounds_intersect(a, (2.1, 0, 3, 2), 2)


def test_bounds_contain():
    outer = (0, 0, 0, 4, 4, 4)
    assert bounds_contain(outer, (1, 1, 1, 2, 2, 2), 3)
    assert bounds_contain(outer, outer, 3)
    assert not bounds_contain(outer, (1, 1, 1, 5, 2, 2), 3)


def test_bounds_union_volume_margin():
    a, b = (0, 0, 1, 1), (2, 2, 3, 4)
    u = bounds_union(a, b, 2)
    assert u == (0, 0, 3, 4)
    assert bounds_volume(u, 2) == 12
    assert bounds_margin(u, 2) == 7


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_empty_tree():
    tree = RTree(dims=2)
    assert len(tree) == 0
    assert tree.search_all((0, 0, 1, 1)) == []
    assert tree.any_intersecting((0, 0, 1, 1)) is None
    tree.check_invariants()


def test_bulk_load_empty():
    tree = RTree.bulk_load([], dims=3)
    assert len(tree) == 0
    assert tree.stats().height == 0


def test_invalid_parameters():
    with pytest.raises(ValueError):
        RTree(dims=0)
    with pytest.raises(ValueError):
        RTree(capacity=1)
    tree = RTree(dims=2)
    with pytest.raises(ValueError):
        tree.insert((0, 0, 1), "short bounds")


def test_bulk_load_single_item():
    tree = RTree.bulk_load([((1, 1, 1, 1), "a")], dims=2)
    assert tree.search_all((0, 0, 2, 2)) == ["a"]
    tree.check_invariants()


def test_bulk_load_respects_capacity():
    rng = random.Random(1)
    entries = [(point_bounds(p), i) for i, p in enumerate(random_points(rng, 500))]
    tree = RTree.bulk_load(entries, dims=2, capacity=8)
    tree.check_invariants()
    stats = tree.stats()
    assert stats.num_items == 500
    assert stats.height >= 2


def test_from_points_constructor():
    tree = RTree.from_points([((0.5, 0.5), "mid")], dims=2)
    assert tree.search_all((0, 0, 1, 1)) == ["mid"]


# ----------------------------------------------------------------------
# Queries vs. linear scan reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dims", [2, 3])
@pytest.mark.parametrize("loader", ["bulk", "insert"])
def test_range_query_matches_linear_scan(dims, loader):
    rng = random.Random(42 + dims)
    entries = [
        (point_bounds(p), i)
        for i, p in enumerate(random_points(rng, 300, dims))
    ]
    if loader == "bulk":
        tree = RTree.bulk_load(entries, dims=dims, capacity=8)
    else:
        tree = RTree(dims=dims, capacity=8)
        for bounds, item in entries:
            tree.insert(bounds, item)
    tree.check_invariants()
    reference = LinearScanIndex.bulk_load(entries, dims=dims)
    for _ in range(40):
        lows = [rng.random() * 0.8 for _ in range(dims)]
        query = tuple(lows) + tuple(lo + rng.random() * 0.4 for lo in lows)
        assert sorted(tree.search_all(query)) == sorted(
            reference.search_all(query)
        )


def test_box_entries_query():
    rng = random.Random(7)
    entries = []
    for i in range(200):
        x, y = rng.random(), rng.random()
        entries.append(((x, y, x + 0.05, y + 0.05), i))
    tree = RTree.bulk_load(entries, dims=2, capacity=6)
    reference = LinearScanIndex.bulk_load(entries, dims=2)
    for _ in range(30):
        x, y = rng.random() * 0.7, rng.random() * 0.7
        query = (x, y, x + 0.3, y + 0.3)
        assert sorted(tree.search_all(query)) == sorted(
            reference.search_all(query)
        )


def test_any_intersecting_finds_witness():
    entries = [((i, i, i, i), i) for i in range(100)]
    tree = RTree.bulk_load(entries, dims=2)
    hit = tree.any_intersecting((40, 40, 60, 60))
    assert hit is not None and 40 <= hit <= 60
    assert tree.any_intersecting((200, 200, 300, 300)) is None


def test_count_intersecting():
    entries = [((i, 0, i, 0), i) for i in range(10)]
    tree = RTree.bulk_load(entries, dims=2)
    assert tree.count_intersecting((2, 0, 5, 0)) == 4


def test_items_iterates_everything():
    entries = [(point_bounds((i, i)), i) for i in range(37)]
    tree = RTree.bulk_load(entries, dims=2, capacity=4)
    assert sorted(item for _, item in tree.items()) == list(range(37))


# ----------------------------------------------------------------------
# Insertion and splits
# ----------------------------------------------------------------------
def test_insert_grows_and_splits():
    rng = random.Random(3)
    tree = RTree(dims=2, capacity=4)
    for i, p in enumerate(random_points(rng, 200)):
        tree.insert_point(p, i)
        if i % 50 == 0:
            tree.check_invariants()
    tree.check_invariants()
    assert len(tree) == 200
    assert tree.stats().height >= 3


def test_insert_duplicate_points():
    tree = RTree(dims=2, capacity=4)
    for i in range(50):
        tree.insert_point((0.5, 0.5), i)
    tree.check_invariants()
    assert sorted(tree.search_all((0.5, 0.5, 0.5, 0.5))) == list(range(50))


def test_mixed_bulk_then_insert():
    rng = random.Random(9)
    entries = [(point_bounds(p), i) for i, p in enumerate(random_points(rng, 100))]
    tree = RTree.bulk_load(entries, dims=2, capacity=8)
    for i, p in enumerate(random_points(rng, 100)):
        tree.insert_point(p, 100 + i)
    tree.check_invariants()
    assert len(tree) == 200
    assert tree.count_intersecting((0, 0, 1, 1)) == 200


def test_invalid_split_policy():
    with pytest.raises(ValueError):
        RTree(split="banana")


@pytest.mark.parametrize("split", ["quadratic", "rstar"])
def test_split_policies_stay_correct(split):
    rng = random.Random(31)
    tree = RTree(dims=2, capacity=6, split=split)
    reference = LinearScanIndex(dims=2)
    for i, p in enumerate(random_points(rng, 250)):
        tree.insert_point(p, i)
        reference.insert_point(p, i)
    tree.check_invariants()
    for _ in range(25):
        x, y = rng.random() * 0.8, rng.random() * 0.8
        query = (x, y, x + 0.25, y + 0.25)
        assert sorted(tree.search_all(query)) == sorted(
            reference.search_all(query)
        )


def test_rstar_split_boxes():
    rng = random.Random(32)
    tree = RTree(dims=3, capacity=5, split="rstar")
    reference = LinearScanIndex(dims=3)
    for i in range(150):
        lows = [rng.random() for _ in range(3)]
        bounds = tuple(lows) + tuple(lo + rng.random() * 0.1 for lo in lows)
        tree.insert(bounds, i)
        reference.insert(bounds, i)
    tree.check_invariants()
    query = (0.2, 0.2, 0.2, 0.6, 0.6, 0.6)
    assert sorted(tree.search_all(query)) == sorted(reference.search_all(query))


class _VolumeOnlyRTree(RTree):
    """The pre-fix split behavior: volume comparisons only.

    On datasets where box volumes tie at zero (collinear points,
    coordinate-sharing venues), seed picking always selects the first
    pair and subtree choice is arbitrary — kept here as the degenerate
    reference the margin fallback must beat.
    """

    def _choose_subtree(self, node, bounds):
        import math

        best = None
        best_enlargement = math.inf
        best_volume = math.inf
        for child in node.children:
            volume = bounds_volume(child.bounds, self._dims)
            enlarged = bounds_volume(
                bounds_union(child.bounds, bounds, self._dims), self._dims
            )
            enlargement = enlarged - volume
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and volume < best_volume
            ):
                best = child
                best_enlargement = enlargement
                best_volume = volume
        return best

    def _split_entries(self, items, get_bounds):
        import math

        dims, min_fill = self._dims, self._min_fill
        worst = -math.inf
        seed_a = seed_b = 0
        for i in range(len(items)):
            bi = get_bounds(items[i])
            for j in range(i + 1, len(items)):
                bj = get_bounds(items[j])
                waste = (
                    bounds_volume(bounds_union(bi, bj, dims), dims)
                    - bounds_volume(bi, dims)
                    - bounds_volume(bj, dims)
                )
                if waste > worst:
                    worst = waste
                    seed_a, seed_b = i, j
        group_a, group_b = [items[seed_a]], [items[seed_b]]
        bounds_a, bounds_b = get_bounds(items[seed_a]), get_bounds(items[seed_b])
        rest = [it for k, it in enumerate(items) if k not in (seed_a, seed_b)]
        for idx, item in enumerate(rest):
            remaining = len(rest) - idx
            if len(group_a) + remaining <= min_fill:
                group_a.append(item)
                bounds_a = bounds_union(bounds_a, get_bounds(item), dims)
                continue
            if len(group_b) + remaining <= min_fill:
                group_b.append(item)
                bounds_b = bounds_union(bounds_b, get_bounds(item), dims)
                continue
            b = get_bounds(item)
            grow_a = bounds_volume(bounds_union(bounds_a, b, dims), dims) - bounds_volume(bounds_a, dims)
            grow_b = bounds_volume(bounds_union(bounds_b, b, dims), dims) - bounds_volume(bounds_b, dims)
            if grow_a < grow_b or (grow_a == grow_b and len(group_a) <= len(group_b)):
                group_a.append(item)
                bounds_a = bounds_union(bounds_a, b, dims)
            else:
                group_b.append(item)
                bounds_b = bounds_union(bounds_b, b, dims)
        return group_a, group_b


def _leaf_bounds(tree):
    out = []
    stack = [tree._root] if tree._root is not None else []
    while stack:
        node = stack.pop()
        if node.is_leaf:
            out.append(node.bounds)
        else:
            stack.extend(node.children)
    return out


def _total_leaf_overlap(leaves, dims):
    """Sum of pairwise overlap margins — volume is useless here because
    degenerate leaves make every overlap volume 0."""
    total = 0.0
    for i in range(len(leaves)):
        for j in range(i + 1, len(leaves)):
            a, b = leaves[i], leaves[j]
            margins = 0.0
            for d in range(dims):
                lo = max(a[d], b[d])
                hi = min(a[dims + d], b[dims + d])
                if hi < lo:
                    break
                margins += hi - lo
            else:
                total += margins
    return total


def test_margin_fallback_improves_clustered_point_splits():
    """Quadratic split on an all-point, volume-degenerate workload.

    Three clusters of collinear venues (x identically 0): every union of
    two points has zero volume, so the old volume-only comparisons
    degenerated to "first pair wins" and leaves straddled clusters.  The
    margin fallback must separate the clusters (less node overlap, no
    more leaves than the degenerate split produced).
    """
    rng = random.Random(5)
    points = []
    for cluster_y in (0.0, 10.0, 20.0):
        points.extend((0.0, cluster_y + rng.random()) for _ in range(40))
    rng.shuffle(points)

    fixed = RTree(dims=2, capacity=4)
    degenerate = _VolumeOnlyRTree(dims=2, capacity=4)
    for i, p in enumerate(points):
        fixed.insert_point(p, i)
        degenerate.insert_point(p, i)
    fixed.check_invariants()
    degenerate.check_invariants()

    fixed_overlap = _total_leaf_overlap(_leaf_bounds(fixed), 2)
    degenerate_overlap = _total_leaf_overlap(_leaf_bounds(degenerate), 2)
    assert fixed_overlap < degenerate_overlap
    # The improvement is not marginal: the degenerate tree's leaves pile
    # on top of each other along the line, the fixed tree's barely touch.
    assert fixed_overlap <= 0.1 * degenerate_overlap
    assert fixed.stats().num_leaves <= degenerate.stats().num_leaves


def test_delete_from_empty_tree():
    tree = RTree(dims=2)
    assert tree.delete((0, 0, 0, 0), "x") is False


def test_delete_single_entry():
    tree = RTree(dims=2)
    tree.insert_point((1, 1), "a")
    assert tree.delete_point((1, 1), "a") is True
    assert len(tree) == 0
    assert tree.search_all((0, 0, 2, 2)) == []
    tree.check_invariants()


def test_delete_missing_entry():
    tree = RTree(dims=2)
    tree.insert_point((1, 1), "a")
    assert tree.delete_point((1, 1), "b") is False
    assert tree.delete_point((2, 2), "a") is False
    assert len(tree) == 1


def test_delete_random_churn_matches_linear_scan():
    rng = random.Random(51)
    tree = RTree(dims=2, capacity=4)
    reference = LinearScanIndex(dims=2)
    live: list[tuple[tuple, int]] = []
    next_id = 0
    for step in range(600):
        if live and rng.random() < 0.4:
            bounds, item = live.pop(rng.randrange(len(live)))
            assert tree.delete(bounds, item) is True
            reference._entries.remove((bounds, item))
        else:
            p = (rng.random(), rng.random())
            bounds = p + p
            tree.insert(bounds, next_id)
            reference.insert(bounds, next_id)
            live.append((bounds, next_id))
            next_id += 1
        if step % 100 == 99:
            tree.check_invariants()
            q = (0.2, 0.2, 0.7, 0.7)
            assert sorted(tree.search_all(q)) == sorted(reference.search_all(q))
    assert len(tree) == len(live)


def test_delete_everything_then_reuse():
    rng = random.Random(52)
    tree = RTree(dims=2, capacity=4)
    points = random_points(rng, 80)
    for i, p in enumerate(points):
        tree.insert_point(p, i)
    for i, p in enumerate(points):
        assert tree.delete_point(p, i) is True
    assert len(tree) == 0
    tree.insert_point((0.5, 0.5), "fresh")
    assert tree.search_all((0, 0, 1, 1)) == ["fresh"]
    tree.check_invariants()


def test_delete_duplicate_points_removes_requested_item():
    tree = RTree(dims=2, capacity=4)
    for i in range(10):
        tree.insert_point((0.5, 0.5), i)
    assert tree.delete_point((0.5, 0.5), 7) is True
    remaining = sorted(tree.search_all((0.5, 0.5, 0.5, 0.5)))
    assert remaining == [0, 1, 2, 3, 4, 5, 6, 8, 9]
    tree.check_invariants()


def test_nearest_validation():
    tree = RTree(dims=2)
    with pytest.raises(ValueError):
        tree.nearest((0, 0, 0))
    with pytest.raises(ValueError):
        tree.nearest((0, 0), k=0)
    assert tree.nearest((0, 0)) == []


def test_nearest_matches_brute_force():
    rng = random.Random(41)
    points = random_points(rng, 200)
    entries = [(point_bounds(p), i) for i, p in enumerate(points)]
    tree = RTree.bulk_load(entries, dims=2, capacity=6)

    def brute(q, k):
        dists = sorted(
            (((p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2) ** 0.5, i)
            for i, p in enumerate(points)
        )
        return dists[:k]

    for _ in range(20):
        q = (rng.random(), rng.random())
        for k in (1, 3, 7):
            got = tree.nearest(q, k=k)
            expected = brute(q, k)
            assert [round(d, 9) for d, _ in got] == [
                round(d, 9) for d, _ in expected
            ]


def test_nearest_with_filter():
    entries = [((float(i), 0.0, float(i), 0.0), i) for i in range(10)]
    tree = RTree.bulk_load(entries, dims=2, capacity=4)
    got = tree.nearest((0.0, 0.0), k=2, item_filter=lambda i: i % 2 == 1)
    assert [item for _, item in got] == [1, 3]


def test_nearest_distance_zero_inside_box():
    tree = RTree(dims=2)
    tree.insert((0, 0, 10, 10), "box")
    [(distance, item)] = tree.nearest((5, 5))
    assert distance == 0.0
    assert item == "box"


def test_nearest_3d():
    entries = [
        ((x, y, z, x, y, z), (x, y, z))
        for x in (0.0, 1.0) for y in (0.0, 1.0) for z in (0.0, 1.0)
    ]
    tree = RTree.bulk_load(entries, dims=3, capacity=4)
    [(d, item)] = tree.nearest((0.1, 0.1, 0.1))
    assert item == (0.0, 0.0, 0.0)


def test_stats_counts():
    entries = [(point_bounds((i / 100, i / 100)), i) for i in range(100)]
    tree = RTree.bulk_load(entries, dims=2, capacity=10)
    stats = tree.stats()
    assert stats.num_items == 100
    assert stats.num_leaves >= 10
    assert stats.num_nodes == stats.num_leaves + stats.num_inner
