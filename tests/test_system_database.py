"""Unit tests for repro.system.database (the integration facade)."""

import pytest

from repro.geometry import Rect
from repro.system import GeosocialDatabase


@pytest.fixture
def db():
    """Two users, mutual follows, two venues; u0 checks into v0 only."""
    database = GeosocialDatabase()
    u0 = database.add_user()
    u1 = database.add_user()
    v0 = database.add_venue(0.1, 0.1)
    v1 = database.add_venue(0.9, 0.9)
    database.add_follow(u0, u1)
    database.add_follow(u1, u0)  # mutual: u0 and u1 form an SCC
    database.add_checkin(u0, v0)
    return database, u0, u1, v0, v1


NEAR_V0 = Rect(0.0, 0.0, 0.2, 0.2)
NEAR_V1 = Rect(0.8, 0.8, 1.0, 1.0)


def test_counts(db):
    database, *_ = db
    assert database.num_users == 2
    assert database.num_venues == 2
    assert database.num_edges == 3


def test_range_reach_through_social_cycle(db):
    database, u0, u1, v0, v1 = db
    # u1 reaches v0 through the mutual follow (a cycle the condensation
    # collapses).
    assert database.range_reach(u1, NEAR_V0) is True
    assert database.range_reach(u1, NEAR_V1) is False
    assert database.range_reach(v1, NEAR_V0) is False


def test_counting_and_enumeration(db):
    database, u0, _, v0, _ = db
    assert database.count_reachable(u0, NEAR_V0) == 1
    assert database.reachable_venues(u0, NEAR_V0) == [v0]
    assert database.reaches_at_least(u0, NEAR_V0, 1)
    assert not database.reaches_at_least(u0, NEAR_V0, 2)


def test_nearest_reachable(db):
    database, u0, _, v0, _ = db
    venue, distance = database.nearest_reachable(u0, 0.0, 0.0)
    assert venue == v0
    assert distance == pytest.approx((0.1**2 + 0.1**2) ** 0.5)


def test_writes_served_by_overlay_without_rebuild(db):
    database, u0, u1, v0, v1 = db
    assert database.range_reach(u1, NEAR_V1) is False
    rebuilds = database.num_rebuilds
    assert not database.is_stale
    database.add_checkin(u1, v1)
    # The write lands in the delta log; the snapshot is still serving.
    assert not database.is_stale
    assert database.delta_size == 1
    assert database.range_reach(u0, NEAR_V1) is True  # via u0 -> u1 -> v1
    assert database.num_rebuilds == rebuilds
    assert database.stats()["overlay_queries"] >= 1


def test_zero_threshold_rebuilds_per_write():
    rebuild_per_write = GeosocialDatabase(refresh_threshold=0)
    a = rebuild_per_write.add_user()
    v = rebuild_per_write.add_venue(0.5, 0.5)
    rebuild_per_write.add_checkin(a, v)
    assert rebuild_per_write.range_reach(a, Rect(0.4, 0.4, 0.6, 0.6))
    rebuilds = rebuild_per_write.num_rebuilds
    rebuild_per_write.add_venue(0.9, 0.9)
    assert rebuild_per_write.is_stale
    assert rebuild_per_write.range_reach(a, Rect(0.4, 0.4, 0.6, 0.6))
    assert rebuild_per_write.num_rebuilds == rebuilds + 1
    assert rebuild_per_write.stats()["overlay_queries"] == 0


def test_threshold_exceeded_triggers_refresh():
    database = GeosocialDatabase(refresh_threshold=2)
    u = database.add_user()
    v = database.add_venue(0.1, 0.1)
    database.add_checkin(u, v)
    database.range_reach(u, NEAR_V0)
    database.add_venue(0.2, 0.2)   # delta op 1
    database.add_venue(0.3, 0.3)   # delta op 2 (= threshold)
    assert not database.is_stale
    database.add_venue(0.4, 0.4)   # exceeds the threshold
    assert database.is_stale
    assert database.stats()["threshold_refreshes"] == 1
    assert database.delta_size == 0


def test_negative_threshold_rejected():
    with pytest.raises(ValueError):
        GeosocialDatabase(refresh_threshold=-1)


def test_removing_snapshot_edge_forces_rebuild(db):
    database, u0, u1, v0, v1 = db
    database.range_reach(u0, NEAR_V0)
    assert not database.is_stale
    database.remove_follow(u0, u1)
    assert database.is_stale  # snapshot edges cannot be patched
    assert database.stats()["removal_refreshes"] == 1


def test_removing_delta_edge_avoids_rebuild(db):
    database, u0, u1, v0, v1 = db
    database.range_reach(u0, NEAR_V0)
    database.add_checkin(u1, v1)
    assert database.range_reach(u0, NEAR_V1) is True
    database.remove_checkin(u1, v1)  # the edge only exists in the delta
    assert not database.is_stale
    assert database.stats()["removal_refreshes"] == 0
    assert database.range_reach(u0, NEAR_V1) is False


def test_new_vertices_served_by_overlay(db):
    database, u0, u1, v0, v1 = db
    database.range_reach(u0, NEAR_V0)
    rebuilds = database.num_rebuilds
    u2 = database.add_user()
    v2 = database.add_venue(0.5, 0.5)
    database.add_follow(u0, u2)
    database.add_checkin(u2, v2)
    center = Rect(0.45, 0.45, 0.55, 0.55)
    # Old vertex reaching a post-snapshot venue through a new user.
    assert database.range_reach(u0, center) is True
    assert database.count_reachable(u0, center) == 1
    assert database.reachable_venues(u0, center) == [v2]
    # The new venue reaches itself; the new user reaches it directly.
    assert database.range_reach(v2, center) is True
    assert database.range_reach(u2, center) is True
    # u1 reaches v2 through the mutual follow with u0; v1 reaches nothing.
    assert database.range_reach(u1, center) is True
    assert database.range_reach(v1, center) is False
    venue, distance = database.nearest_reachable(u2, 0.5, 0.5)
    assert venue == v2 and distance == pytest.approx(0.0)
    assert database.num_rebuilds == rebuilds


def test_queries_between_writes_reuse_snapshot(db):
    database, u0, *_ = db
    database.range_reach(u0, NEAR_V0)
    rebuilds = database.num_rebuilds
    for _ in range(5):
        database.range_reach(u0, NEAR_V1)
    assert database.num_rebuilds == rebuilds


def test_remove_follow(db):
    database, u0, u1, v0, v1 = db
    database.add_checkin(u1, v1)
    assert database.range_reach(u0, NEAR_V1) is True
    database.remove_follow(u0, u1)
    assert database.range_reach(u0, NEAR_V1) is False
    # the mutual back-edge still lets u1 reach v0
    assert database.range_reach(u1, NEAR_V0) is True
    with pytest.raises(ValueError):
        database.remove_follow(u0, u1)


def test_remove_follow_rejects_checkin_edges(db):
    # Regression: remove_follow used to silently delete a check-in edge
    # because it only checked edge presence, not vertex kinds.
    database, u0, u1, v0, v1 = db
    with pytest.raises(ValueError, match="follow edges connect users"):
        database.remove_follow(u0, v0)
    assert database.num_edges == 3  # the check-in survived


def test_remove_checkin(db):
    database, u0, u1, v0, v1 = db
    assert database.range_reach(u0, NEAR_V0) is True
    database.remove_checkin(u0, v0)
    assert database.range_reach(u0, NEAR_V0) is False
    assert database.num_edges == 2
    with pytest.raises(ValueError):
        database.remove_checkin(u0, v0)  # already gone
    with pytest.raises(ValueError):
        database.remove_checkin(u0, u1)  # not a venue
    with pytest.raises(ValueError):
        database.remove_checkin(v0, v1)  # not a user


def test_duplicate_edges_ignored(db):
    database, u0, u1, v0, _ = db
    assert database.add_follow(u0, u1) is False
    assert database.add_checkin(u0, v0) is False
    assert database.num_edges == 3


def test_type_checking(db):
    database, u0, u1, v0, v1 = db
    with pytest.raises(ValueError):
        database.add_follow(u0, v0)      # venues cannot be followed
    with pytest.raises(ValueError):
        database.add_checkin(v0, v1)     # venues cannot check in
    with pytest.raises(ValueError):
        database.add_checkin(u0, u1)     # users are not venues
    with pytest.raises(IndexError):
        database.range_reach(99, NEAR_V0)


def test_query_without_venues_rejected():
    database = GeosocialDatabase()
    database.add_user()
    with pytest.raises(ValueError, match="no venues"):
        database.range_reach(0, NEAR_V0)


def test_refresh_eagerly_rebuilds(db):
    database, *_ = db
    assert database.is_stale
    database.refresh()
    assert not database.is_stale
    assert database.num_rebuilds == 1


def test_self_follow_rejected_quietly(db):
    database, u0, *_ = db
    assert database.add_follow(u0, u0) is False


# ----------------------------------------------------------------------
# Persistent snapshots and warm starts
# ----------------------------------------------------------------------
def _populate(database):
    u0 = database.add_user()
    u1 = database.add_user()
    v0 = database.add_venue(0.1, 0.1)
    v1 = database.add_venue(0.9, 0.9)
    database.add_follow(u0, u1)
    database.add_checkin(u1, v0)
    return u0, u1, v0, v1


def test_cold_start_persists_snapshot(tmp_path):
    snap = tmp_path / "snap"
    database = GeosocialDatabase(snapshot_dir=str(snap))
    u0, *_ = _populate(database)
    assert database.range_reach(u0, NEAR_V0) is True
    assert (snap / "manifest.json").exists()
    assert database.stats()["snapshot_saves"] == 1
    assert database.stats()["warm_starts"] == 0


def test_warm_start_serves_without_rebuild(tmp_path):
    snap = tmp_path / "snap"
    database = GeosocialDatabase(snapshot_dir=str(snap))
    u0, u1, v0, v1 = _populate(database)
    expected = {
        (v, r.as_tuple()): database.range_reach(v, r)
        for v in (u0, u1, v0, v1)
        for r in (NEAR_V0, NEAR_V1)
    }
    warm = GeosocialDatabase(snapshot_dir=str(snap))
    assert warm.stats()["warm_starts"] == 1
    assert not warm.is_stale
    for (v, r), answer in expected.items():
        assert warm.range_reach(v, Rect(*r)) == answer
    assert warm.stats()["rebuilds"] == 0
    assert warm.num_users == database.num_users
    assert warm.num_venues == database.num_venues
    assert warm.num_edges == database.num_edges


def test_warm_start_accepts_new_writes_through_overlay(tmp_path):
    snap = tmp_path / "snap"
    database = GeosocialDatabase(snapshot_dir=str(snap))
    _populate(database)
    database.range_reach(0, NEAR_V0)  # build + persist

    warm = GeosocialDatabase(snapshot_dir=str(snap))
    u = warm.add_user()
    v = warm.add_venue(0.5, 0.5)
    warm.add_checkin(u, v)
    assert warm.range_reach(u, Rect(0.4, 0.4, 0.6, 0.6)) is True
    assert warm.stats()["rebuilds"] == 0
    assert warm.stats()["overlay_queries"] >= 1


def test_missing_snapshot_dir_is_cold_start(tmp_path):
    database = GeosocialDatabase(snapshot_dir=str(tmp_path / "never"))
    assert database.stats()["warm_starts"] == 0
    u0, *_ = _populate(database)
    assert database.range_reach(u0, NEAR_V0) is True


def test_corrupt_snapshot_raises(tmp_path):
    from repro.store import SnapshotError

    snap = tmp_path / "snap"
    database = GeosocialDatabase(snapshot_dir=str(snap))
    _populate(database)
    database.range_reach(0, NEAR_V0)
    part = sorted((snap / "parts").iterdir())[0]
    data = bytearray(part.read_bytes())
    data[-1] ^= 0xFF
    part.write_bytes(bytes(data))
    with pytest.raises(SnapshotError):
        GeosocialDatabase(snapshot_dir=str(snap))


def test_rebuild_after_threshold_repersists(tmp_path):
    snap = tmp_path / "snap"
    database = GeosocialDatabase(refresh_threshold=1, snapshot_dir=str(snap))
    u0, u1, v0, v1 = _populate(database)
    database.range_reach(u0, NEAR_V0)
    first = (snap / "manifest.json").read_text()
    # Exceed the threshold, forcing a rebuild on the next query.
    database.add_checkin(u0, v1)
    database.add_follow(u1, u0)
    assert database.range_reach(u0, NEAR_V1) is True
    assert database.stats()["snapshot_saves"] == 2
    assert (snap / "manifest.json").read_text() != first
