"""Unit tests for repro.system.database (the integration facade)."""

import pytest

from repro.geometry import Rect
from repro.system import GeosocialDatabase


@pytest.fixture
def db():
    """Two users, mutual follows, two venues; u0 checks into v0 only."""
    database = GeosocialDatabase()
    u0 = database.add_user()
    u1 = database.add_user()
    v0 = database.add_venue(0.1, 0.1)
    v1 = database.add_venue(0.9, 0.9)
    database.add_follow(u0, u1)
    database.add_follow(u1, u0)  # mutual: u0 and u1 form an SCC
    database.add_checkin(u0, v0)
    return database, u0, u1, v0, v1


NEAR_V0 = Rect(0.0, 0.0, 0.2, 0.2)
NEAR_V1 = Rect(0.8, 0.8, 1.0, 1.0)


def test_counts(db):
    database, *_ = db
    assert database.num_users == 2
    assert database.num_venues == 2
    assert database.num_edges == 3


def test_range_reach_through_social_cycle(db):
    database, u0, u1, v0, v1 = db
    # u1 reaches v0 through the mutual follow (a cycle the condensation
    # collapses).
    assert database.range_reach(u1, NEAR_V0) is True
    assert database.range_reach(u1, NEAR_V1) is False
    assert database.range_reach(v1, NEAR_V0) is False


def test_counting_and_enumeration(db):
    database, u0, _, v0, _ = db
    assert database.count_reachable(u0, NEAR_V0) == 1
    assert database.reachable_venues(u0, NEAR_V0) == [v0]
    assert database.reaches_at_least(u0, NEAR_V0, 1)
    assert not database.reaches_at_least(u0, NEAR_V0, 2)


def test_nearest_reachable(db):
    database, u0, _, v0, _ = db
    venue, distance = database.nearest_reachable(u0, 0.0, 0.0)
    assert venue == v0
    assert distance == pytest.approx((0.1**2 + 0.1**2) ** 0.5)


def test_updates_invalidate_snapshot(db):
    database, u0, u1, v0, v1 = db
    assert database.range_reach(u1, NEAR_V1) is False
    rebuilds = database.num_rebuilds
    assert not database.is_stale
    database.add_checkin(u1, v1)
    assert database.is_stale
    assert database.range_reach(u0, NEAR_V1) is True  # via u0 -> u1 -> v1
    assert database.num_rebuilds == rebuilds + 1


def test_queries_between_writes_reuse_snapshot(db):
    database, u0, *_ = db
    database.range_reach(u0, NEAR_V0)
    rebuilds = database.num_rebuilds
    for _ in range(5):
        database.range_reach(u0, NEAR_V1)
    assert database.num_rebuilds == rebuilds


def test_remove_follow(db):
    database, u0, u1, v0, v1 = db
    database.add_checkin(u1, v1)
    assert database.range_reach(u0, NEAR_V1) is True
    database.remove_follow(u0, u1)
    assert database.range_reach(u0, NEAR_V1) is False
    # the mutual back-edge still lets u1 reach v0
    assert database.range_reach(u1, NEAR_V0) is True
    with pytest.raises(ValueError):
        database.remove_follow(u0, u1)


def test_duplicate_edges_ignored(db):
    database, u0, u1, v0, _ = db
    assert database.add_follow(u0, u1) is False
    assert database.add_checkin(u0, v0) is False
    assert database.num_edges == 3


def test_type_checking(db):
    database, u0, u1, v0, v1 = db
    with pytest.raises(ValueError):
        database.add_follow(u0, v0)      # venues cannot be followed
    with pytest.raises(ValueError):
        database.add_checkin(v0, v1)     # venues cannot check in
    with pytest.raises(ValueError):
        database.add_checkin(u0, u1)     # users are not venues
    with pytest.raises(IndexError):
        database.range_reach(99, NEAR_V0)


def test_query_without_venues_rejected():
    database = GeosocialDatabase()
    database.add_user()
    with pytest.raises(ValueError, match="no venues"):
        database.range_reach(0, NEAR_V0)


def test_refresh_eagerly_rebuilds(db):
    database, *_ = db
    assert database.is_stale
    database.refresh()
    assert not database.is_stale
    assert database.num_rebuilds == 1


def test_self_follow_rejected_quietly(db):
    database, u0, *_ = db
    assert database.add_follow(u0, u0) is False
