"""Unit tests for repro.bench.svg_chart."""

import pytest

from repro.bench.svg_chart import render_svg, write_svg


def test_validation():
    with pytest.raises(ValueError):
        render_svg("t", ["a"], {})
    with pytest.raises(ValueError):
        render_svg("t", [], {"s": []})
    with pytest.raises(ValueError):
        render_svg("t", ["a", "b"], {"s": [1.0]})


def test_basic_document_structure():
    svg = render_svg("My <Figure>", ["1%", "2%"], {"m": [10.0, 100.0]})
    assert svg.startswith("<svg ")
    assert svg.endswith("</svg>")
    assert "My &lt;Figure&gt;" in svg  # escaped title
    assert svg.count("<circle") == 2
    assert svg.count("<polyline") == 1


def test_multiple_series_get_distinct_colors():
    svg = render_svg(
        "t", ["a"], {"s1": [1.0], "s2": [2.0], "s3": [3.0]}
    )
    assert "#0072B2" in svg and "#E69F00" in svg and "#009E73" in svg


def test_log_scale_decade_gridlines():
    svg = render_svg("t", ["a", "b"], {"s": [1.0, 1000.0]})
    for decade in ("1<", "10<", "100<", "1000<"):
        assert f">{decade}" in svg.replace("</text>", "<")


def test_linear_scale():
    svg = render_svg("t", ["a", "b"], {"s": [0.0, 4.0]}, log_scale=False)
    assert "<polyline" in svg


def test_deterministic():
    args = ("t", ["a", "b"], {"m": [5.0, 50.0]})
    assert render_svg(*args) == render_svg(*args)


def test_write_svg_creates_file(tmp_path):
    out = write_svg(
        tmp_path / "charts" / "fig.svg", "t", ["x"], {"s": [1.0]}
    )
    assert out.exists()
    assert out.read_text().startswith("<svg")


def test_single_x_position_centers_point():
    svg = render_svg("t", ["only"], {"s": [42.0]})
    assert svg.count("<circle") == 1


def test_legend_lists_all_series():
    svg = render_svg("t", ["a"], {"alpha": [1.0], "beta": [2.0]})
    assert ">alpha</text>" in svg
    assert ">beta</text>" in svg
