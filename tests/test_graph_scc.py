"""Unit tests for repro.graph.scc (iterative Tarjan)."""

import random

from helpers import random_digraph
from repro.graph import DiGraph, strongly_connected_components
from repro.graph.scc import scc_membership
from repro.graph.traversal import path_exists


def as_sets(components):
    return {frozenset(c) for c in components}


def test_single_vertex():
    assert as_sets(strongly_connected_components(DiGraph(1))) == {frozenset({0})}


def test_dag_has_singleton_components():
    g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    assert as_sets(strongly_connected_components(g)) == {
        frozenset({i}) for i in range(4)
    }


def test_simple_cycle_is_one_component():
    g = DiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
    assert as_sets(strongly_connected_components(g)) == {frozenset({0, 1, 2})}


def test_two_cycles_and_bridge():
    g = DiGraph.from_edges(
        6, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (4, 5)]
    )
    assert as_sets(strongly_connected_components(g)) == {
        frozenset({0, 1}),
        frozenset({2, 3, 4}),
        frozenset({5}),
    }


def test_self_loop_is_singleton_component():
    g = DiGraph(2)
    g.add_edge(0, 0)
    g.add_edge(0, 1)
    assert as_sets(strongly_connected_components(g)) == {
        frozenset({0}),
        frozenset({1}),
    }


def test_emission_order_is_reverse_topological():
    # Tarjan emits an SCC only after all SCCs it can reach.
    g = DiGraph.from_edges(5, [(0, 1), (1, 2), (2, 1), (2, 3), (3, 4)])
    components = strongly_connected_components(g)
    member = {}
    for cid, comp in enumerate(components):
        for v in comp:
            member[v] = cid
    for u, v in g.edges():
        if member[u] != member[v]:
            assert member[v] < member[u]


def test_scc_membership_shape():
    g = DiGraph.from_edges(4, [(0, 1), (1, 0), (2, 3)])
    member, count = scc_membership(g)
    assert count == 3
    assert member[0] == member[1]
    assert member[2] != member[3]


def test_matches_mutual_reachability_definition():
    rng = random.Random(5)
    for _ in range(15):
        g = random_digraph(rng, 12, 25)
        member, _ = scc_membership(g)
        for u in range(12):
            for v in range(12):
                same = member[u] == member[v]
                mutual = path_exists(g, u, v) and path_exists(g, v, u)
                assert same == mutual, (u, v)


def test_deep_cycle_no_recursion_limit():
    n = 30_000
    edges = [(i, (i + 1) % n) for i in range(n)]
    g = DiGraph.from_edges(n, edges)
    components = strongly_connected_components(g)
    assert len(components) == 1
    assert len(components[0]) == n
