"""Prometheus text exposition format: escaping, headers, parseability.

The scrape parser below is a deliberately strict reimplementation of
the exposition grammar (metric names, quoted label values with ``\\``,
``\\"`` and ``\\n`` escapes, HELP/TYPE comment lines) so the renderer is
tested against the *format*, not against its own output conventions.
"""

import math
import re

import pytest

from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry, escape_label_value

_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_VALUE = re.compile(r"[-+]?(\d+(\.\d+)?([eE][-+]?\d+)?|Inf)\Z|NaN\Z")


def _parse_labels(raw: str, line: str) -> dict[str, str]:
    """Parse ``key="value",...`` honoring in-value escapes."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(raw):
        eq = raw.index("=", i)
        key = raw[i:eq]
        assert _NAME.match(key), f"bad label name in {line!r}"
        assert raw[eq + 1] == '"', f"unquoted label value in {line!r}"
        i = eq + 2
        value = []
        while True:
            assert i < len(raw), f"unterminated label value in {line!r}"
            ch = raw[i]
            if ch == "\\":
                esc = raw[i + 1]
                assert esc in ('"', "\\", "n"), f"bad escape in {line!r}"
                value.append("\n" if esc == "n" else esc)
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                assert ch != "\n"
                value.append(ch)
                i += 1
        labels[key] = "".join(value)
        if i < len(raw):
            assert raw[i] == ",", f"malformed label list in {line!r}"
            i += 1
    return labels


def parse_exposition(text: str):
    """Parse an exposition document into (types, helps, samples).

    Asserts on any grammar violation: that is the test.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    samples: list[tuple[str, dict[str, str], str]] = []
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace in {line!r}"
        if line.startswith("# HELP "):
            name, _, doc = line[len("# HELP "):].partition(" ")
            assert _NAME.match(name), f"bad HELP name in {line!r}"
            assert name not in helps, f"duplicate HELP for {name}"
            helps[name] = doc
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            assert _NAME.match(name), f"bad TYPE name in {line!r}"
            assert kind in ("counter", "gauge", "histogram", "untyped")
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment {line!r}"
        head, _, value = line.rpartition(" ")
        assert _VALUE.match(value), f"bad sample value in {line!r}"
        if head.endswith("}"):
            brace = head.index("{")
            name, raw = head[:brace], head[brace + 1:-1]
            labels = _parse_labels(raw, line)
        else:
            name, labels = head, {}
        assert _NAME.match(name), f"bad metric name in {line!r}"
        samples.append((name, labels, value))
    return types, helps, samples


def _base_name(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("plain_total", "A plain counter.").inc(3)
    registry.gauge("level", "A gauge.").set(2.5)
    registry.histogram("latency_seconds", "A histogram.").observe(0.004)
    family = registry.counter_family(
        "labelled_total", "A labelled counter.", label_names=("method",)
    )
    family.labels(method="3dreach").inc()
    return registry

def test_document_parses_and_headers_precede_samples(registry):
    text = render_prometheus(registry)
    types, helps, samples = parse_exposition(text)
    sample_names = {_base_name(name) for name, _, _ in samples}
    # Every emitted sample has a TYPE header, and vice versa.
    assert sample_names == set(types)
    assert types["plain_total"] == "counter"
    assert types["level"] == "gauge"
    assert types["latency_seconds"] == "histogram"
    assert types["labelled_total"] == "counter"
    assert helps["plain_total"] == "A plain counter."
    # Histograms expose the three series plus a +Inf bucket.
    histogram_names = [n for n, _, _ in samples if n.startswith("latency")]
    assert "latency_seconds_sum" in histogram_names
    assert "latency_seconds_count" in histogram_names
    inf_buckets = [
        labels for name, labels, _ in samples
        if name == "latency_seconds_bucket" and labels["le"] == "+Inf"
    ]
    assert len(inf_buckets) == 1


def test_label_values_with_quotes_backslashes_newlines(registry):
    family = registry.counter_family(
        "weird_total", "Hostile labels.", label_names=("path",)
    )
    hostile = 'quo"te\\back\nnew,brace}'
    family.labels(path=hostile).inc(7)
    text = render_prometheus(registry)
    _, _, samples = parse_exposition(text)
    found = [
        (labels, value) for name, labels, value in samples
        if name == "weird_total"
    ]
    assert found == [({"path": hostile}, "7")]


def test_escape_label_value_roundtrip_examples():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"
    assert escape_label_value("plain") == "plain"


def test_help_lines_escape_backslash_and_newline(registry):
    registry.counter("doc_total", "line one\nline \\ two").inc()
    text = render_prometheus(registry)
    types, helps, _ = parse_exposition(text)
    assert helps["doc_total"] == "line one\\nline \\\\ two"
    assert types["doc_total"] == "counter"


def test_special_float_values_render_as_inf_nan(registry):
    registry.gauge("hot", "Special values.").set(float("inf"))
    registry.gauge("cold", "Special values.").set(float("-inf"))
    registry.gauge("odd", "Special values.").set(float("nan"))
    _, _, samples = parse_exposition(render_prometheus(registry))
    values = {name: value for name, _, value in samples}
    assert values["hot"] == "+Inf"
    assert values["cold"] == "-Inf"
    assert values["odd"] == "NaN"
    assert math.isinf(float(values["hot"]))


def test_real_registry_document_parses():
    # The process-wide registry with every instrument module imported.
    import repro.obs.instruments  # noqa: F401
    from repro.obs.metrics import REGISTRY

    parse_exposition(render_prometheus(REGISTRY))
