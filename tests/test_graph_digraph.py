"""Unit tests for repro.graph.digraph."""

import pytest

from repro.graph import DiGraph


def test_empty_graph():
    g = DiGraph()
    assert g.num_vertices == 0
    assert g.num_edges == 0
    assert list(g.edges()) == []


def test_negative_vertex_count_rejected():
    with pytest.raises(ValueError):
        DiGraph(-1)


def test_add_edge_and_degrees():
    g = DiGraph(3)
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 2)
    assert g.num_edges == 3
    assert g.out_degree(0) == 2
    assert g.in_degree(2) == 2
    assert g.successors(0) == [1, 2]
    assert g.predecessors(2) == [0, 1]


def test_add_edge_out_of_range():
    g = DiGraph(2)
    with pytest.raises(IndexError):
        g.add_edge(0, 2)
    with pytest.raises(IndexError):
        g.add_edge(-1, 0)


def test_add_vertex_returns_new_id():
    g = DiGraph(2)
    assert g.add_vertex() == 2
    g.add_edge(2, 0)
    assert g.out_degree(2) == 1


def test_from_edges():
    g = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    assert g.num_edges == 3
    assert sorted(g.edges()) == [(0, 1), (1, 2), (2, 3)]


def test_has_edge():
    g = DiGraph.from_edges(3, [(0, 1)])
    assert g.has_edge(0, 1)
    assert not g.has_edge(1, 0)


def test_self_loops_allowed_in_raw_graph():
    # Raw networks may contain self-references; condensation removes them.
    g = DiGraph(1)
    g.add_edge(0, 0)
    assert g.has_edge(0, 0)


def test_reversed_flips_every_edge():
    g = DiGraph.from_edges(4, [(0, 1), (1, 2), (0, 3)])
    r = g.reversed()
    assert sorted(r.edges()) == [(1, 0), (2, 1), (3, 0)]
    assert r.num_vertices == g.num_vertices


def test_reversed_twice_is_identity():
    g = DiGraph.from_edges(5, [(0, 1), (2, 4), (3, 1), (4, 0)])
    assert sorted(g.reversed().reversed().edges()) == sorted(g.edges())


def test_deduplicated_collapses_parallel_edges():
    g = DiGraph.from_edges(3, [(0, 1), (0, 1), (1, 2), (0, 1)])
    d = g.deduplicated()
    assert d.num_edges == 2
    assert sorted(d.edges()) == [(0, 1), (1, 2)]
    # original is untouched
    assert g.num_edges == 4


def test_vertices_range():
    assert list(DiGraph(3).vertices()) == [0, 1, 2]
