"""Unit tests for the method registry (repro.core.base)."""

import pytest

from helpers import FIG1_INDEX, FIG1_REGION, fig1_network
from repro.core import METHOD_REGISTRY, build_method
from repro.core.base import RangeReachMethod
from repro.geosocial import condense_network

EXPECTED_NAMES = {
    "spareach-bfl",
    "spareach-int",
    "georeach",
    "socreach",
    "3dreach",
    "3dreach-rev",
}


def test_registry_contains_paper_methods():
    assert EXPECTED_NAMES.issubset(METHOD_REGISTRY.keys())


def test_unknown_name_rejected():
    condensed = condense_network(fig1_network())
    with pytest.raises(ValueError, match="unknown method"):
        build_method("quantumreach", condensed)


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
def test_build_method_produces_working_index(name):
    condensed = condense_network(fig1_network())
    method = build_method(name, condensed)
    assert isinstance(method, RangeReachMethod)
    assert method.query(FIG1_INDEX["a"], FIG1_REGION) is True
    assert method.query(FIG1_INDEX["c"], FIG1_REGION) is False


def test_build_method_forwards_options():
    condensed = condense_network(fig1_network())
    method = build_method("3dreach", condensed, scc_mode="mbr")
    assert method.name == "3dreach-mbr"


def test_build_georeach_with_param_options():
    condensed = condense_network(fig1_network())
    method = build_method("georeach", condensed, grid_levels=4, merge_count=2)
    assert method.params.grid_levels == 4
    assert method.params.merge_count == 2


def test_docstring_lists_every_registered_method():
    """build_method's known-names doc is generated from the registry."""
    doc = build_method.__doc__
    for name in METHOD_REGISTRY:
        assert f"``{name}``" in doc


def test_docstring_resyncs_after_registration():
    from repro.core.base import register_method, sync_known_names_doc

    @register_method("test-dummy-method")
    def _build_dummy(network, **options):  # pragma: no cover
        raise NotImplementedError

    try:
        sync_known_names_doc()
        assert "``test-dummy-method``" in build_method.__doc__
    finally:
        del METHOD_REGISTRY["test-dummy-method"]
        sync_known_names_doc()
    assert "``test-dummy-method``" not in build_method.__doc__
