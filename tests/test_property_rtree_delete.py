"""Property-based tests for R-tree deletion under random churn."""

from hypothesis import given, settings, strategies as st

from repro.spatial import LinearScanIndex, RTree

coordinate = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)

# An op is ("insert", x, y) or ("delete", index-into-live).
ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), coordinate, coordinate),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=500)),
    ),
    max_size=80,
)


@given(ops)
@settings(max_examples=50, deadline=None)
def test_churn_preserves_contents_and_invariants(sequence):
    tree = RTree(dims=2, capacity=4)
    live: list[tuple[tuple, int]] = []
    next_id = 0
    for op in sequence:
        if op[0] == "insert":
            bounds = (op[1], op[2], op[1], op[2])
            tree.insert(bounds, next_id)
            live.append((bounds, next_id))
            next_id += 1
        elif live:
            bounds, item = live.pop(op[1] % len(live))
            assert tree.delete(bounds, item) is True
    tree.check_invariants()
    assert len(tree) == len(live)
    whole = (0.0, 0.0, 1.0, 1.0)
    assert sorted(tree.search_all(whole)) == sorted(item for _, item in live)


@given(ops)
@settings(max_examples=30, deadline=None)
def test_queries_match_reference_after_churn(sequence):
    tree = RTree(dims=2, capacity=4)
    reference = LinearScanIndex(dims=2)
    live: list[tuple[tuple, int]] = []
    next_id = 0
    for op in sequence:
        if op[0] == "insert":
            bounds = (op[1], op[2], op[1], op[2])
            tree.insert(bounds, next_id)
            reference.insert(bounds, next_id)
            live.append((bounds, next_id))
            next_id += 1
        elif live:
            bounds, item = live.pop(op[1] % len(live))
            tree.delete(bounds, item)
            reference._entries.remove((bounds, item))
    for query in ((0.0, 0.0, 0.5, 0.5), (0.25, 0.25, 0.75, 0.75)):
        assert sorted(tree.search_all(query)) == sorted(
            reference.search_all(query)
        )
