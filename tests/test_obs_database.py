"""GeosocialDatabase serving metrics mirrored into the obs registry."""

import pytest

from repro import obs
from repro.geometry import Rect
from repro.system import GeosocialDatabase

REGION = Rect(0.0, 0.0, 2.0, 2.0)


@pytest.fixture(autouse=True)
def obs_on():
    with obs.observability(True):
        yield


def seeded_db(refresh_threshold=64):
    db = GeosocialDatabase(refresh_threshold=refresh_threshold)
    users = [db.add_user() for _ in range(3)]
    venue = db.add_venue(1.0, 1.0)
    db.add_follow(users[0], users[1])
    db.add_checkin(users[1], venue)
    return db, users, venue


def test_snapshot_and_overlay_queries_counted():
    db, users, _ = seeded_db()
    with obs.measure() as delta:
        db.range_reach(users[0], REGION)  # builds + serves from snapshot
        db.add_follow(users[1], users[2])  # delta op
        db.range_reach(users[0], REGION)  # overlay path
    assert delta.get("repro_db_rebuilds_total") == 1
    assert delta.get("repro_db_snapshot_queries_total") == 1
    assert delta.get("repro_db_overlay_queries_total") == 1
    assert delta.get("repro_db_delta_bfs_expansions_total", 0) >= 1
    # Instance stats agree with the registry deltas.
    stats = db.stats()
    assert stats["rebuilds"] == 1
    assert stats["overlay_queries"] == 1


def test_rebuild_duration_histogram_observes():
    before = obs.REGISTRY.snapshot()["histograms"]["repro_db_rebuild_seconds"]
    db, users, _ = seeded_db()
    db.range_reach(users[0], REGION)
    after = obs.REGISTRY.snapshot()["histograms"]["repro_db_rebuild_seconds"]
    assert after["count"] == before["count"] + 1
    assert after["sum"] >= before["sum"]


def test_threshold_refresh_counted():
    db, users, venue = seeded_db(refresh_threshold=1)
    db.range_reach(users[0], REGION)
    with obs.measure() as delta:
        db.add_follow(users[0], users[2])  # 1 op: at threshold, kept
        db.add_follow(users[1], users[2])  # 2nd op: exceeds, drops snapshot
        db.range_reach(users[0], REGION)  # rebuild
    assert delta.get("repro_db_threshold_refreshes_total") == 1
    assert delta.get("repro_db_rebuilds_total") == 1


def test_removal_refresh_counted():
    db, users, venue = seeded_db()
    db.range_reach(users[0], REGION)
    with obs.measure() as delta:
        db.remove_follow(users[0], users[1])  # snapshot edge: invalidates
        db.range_reach(users[1], REGION)
    assert delta.get("repro_db_removal_refreshes_total") == 1
    assert delta.get("repro_db_rebuilds_total") == 1


def test_delta_gauges_track_log_size():
    db, users, _ = seeded_db()
    db.range_reach(users[0], REGION)  # snapshot built; delta empty
    assert obs.REGISTRY.value("repro_db_delta_ops") == 0
    assert obs.REGISTRY.value("repro_db_delta_edges") == 0
    db.add_follow(users[1], users[2])
    assert obs.REGISTRY.value("repro_db_delta_ops") == 1
    assert obs.REGISTRY.value("repro_db_delta_edges") == 1
    db.add_venue(0.5, 0.5)
    assert obs.REGISTRY.value("repro_db_delta_ops") == 2
    assert obs.REGISTRY.value("repro_db_delta_edges") == 1
    db.refresh()
    assert obs.REGISTRY.value("repro_db_delta_ops") == 0
    assert obs.REGISTRY.value("repro_db_delta_edges") == 0
