"""Property-based tests for the B+-tree against a dict/sorted-list model."""

from hypothesis import given, settings, strategies as st

from repro.relational import BPlusTree

keys = st.integers(min_value=-1000, max_value=1000)


@given(st.lists(st.tuples(keys, st.integers()), max_size=120))
@settings(max_examples=60, deadline=None)
def test_insert_matches_dict_model(pairs):
    tree = BPlusTree(order=5)
    model: dict[int, int] = {}
    for k, v in pairs:
        tree.insert(k, v)
        model[k] = v
    tree.check_invariants()
    assert len(tree) == len(model)
    for k, v in model.items():
        assert tree.get(k) == v
    assert [k for k, _ in tree.items()] == sorted(model)


@given(st.lists(keys, unique=True, max_size=100), keys, keys)
@settings(max_examples=60, deadline=None)
def test_range_scan_matches_model(key_list, a, b):
    lo, hi = min(a, b), max(a, b)
    tree = BPlusTree(order=5)
    for k in key_list:
        tree.insert(k, k * 2)
    expected = sorted(k for k in key_list if lo <= k <= hi)
    assert [k for k, _ in tree.range_scan(lo, hi)] == expected
    assert [v for _, v in tree.range_scan(lo, hi)] == [k * 2 for k in expected]


@given(st.lists(keys, unique=True, min_size=1, max_size=100))
@settings(max_examples=40, deadline=None)
def test_bulk_load_equals_incremental(key_list):
    ordered = sorted(key_list)
    bulk = BPlusTree.from_sorted([(k, k) for k in ordered], order=6)
    incremental = BPlusTree(order=6)
    for k in key_list:
        incremental.insert(k, k)
    bulk.check_invariants()
    incremental.check_invariants()
    assert list(bulk.items()) == list(incremental.items())


@given(st.lists(keys, unique=True, max_size=80))
@settings(max_examples=40, deadline=None)
def test_contains_consistent(key_list):
    tree = BPlusTree(order=4)
    for k in key_list:
        tree.insert(k, None)
    present = set(key_list)
    for probe in range(-50, 50, 7):
        assert (probe in tree) == (probe in present)
