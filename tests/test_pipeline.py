"""Unit tests for the shared build pipeline (repro.pipeline)."""

import pytest

from repro import obs
from repro.core import (
    GeosocialQueryEngine,
    SocReach,
    SpaReach,
    ThreeDReach,
    ThreeDReachRev,
    build_method,
    build_methods,
)
from repro.geometry import Point
from repro.geosocial import GeosocialNetwork, condense_network
from repro.graph import DiGraph
from repro.pipeline import BuildContext


def _network():
    # 0 -> 1 -> 2 (venue), 1 <-> 3 cycle, 4 isolated venue.
    graph = DiGraph.from_edges(5, [(0, 1), (1, 2), (1, 3), (3, 1)])
    points = [None, None, Point(2.0, 2.0), None, Point(8.0, 8.0)]
    return GeosocialNetwork(graph, points)


def test_context_from_raw_network_condenses_once():
    context = BuildContext(_network())
    first = context.condensed()
    second = context.condensed()
    assert first is second
    stats = context.stats()
    assert stats["misses"]["condense"] == 1
    assert stats["hits"]["condense"] == 1


def test_context_seeded_with_condensation_never_rebuilds():
    condensed = condense_network(_network())
    context = BuildContext(condensed)
    assert context.condensed() is condensed
    stats = context.stats()
    assert stats["misses"].get("condense", 0) == 0
    assert stats["hits"]["condense"] == 1


def test_context_rejects_other_sources():
    with pytest.raises(TypeError):
        BuildContext(object())


def test_labeling_cached_per_key():
    context = BuildContext(_network())
    a = context.labeling()
    b = context.labeling(mode="subtree", stride=1)
    assert a is b
    strided = context.labeling(stride=2)
    assert strided is not a
    rev = context.reversed_labeling()
    assert rev is not a
    assert context.labeling_builds() == [
        ("forward", "subtree", 1),
        ("forward", "subtree", 2),
        ("reversed", "subtree", 1),
    ]


def test_spareach_variants_share_one_rtree():
    context = BuildContext(_network())
    bfl = SpaReach(context.condensed(), reach_index="bfl", context=context)
    interval = SpaReach(
        context.condensed(), reach_index="interval", context=context
    )
    assert bfl.rtree is interval.rtree
    stats = context.stats()
    assert stats["misses"]["rtree"] == 1
    assert stats["hits"]["rtree"] == 1


def test_labeling_shared_across_methods():
    context = BuildContext(_network())
    condensed = context.condensed()
    soc = SocReach(condensed, context=context)
    three = ThreeDReach(condensed, context=context)
    spa = SpaReach(condensed, reach_index="interval", context=context)
    engine = GeosocialQueryEngine(condensed, context=context)
    assert soc.labeling is three.labeling
    assert soc.labeling is spa.reach_index.labeling
    assert soc.labeling is engine.labeling
    # Reversed labeling is a distinct artifact.
    rev = ThreeDReachRev(condensed, context=context)
    assert rev.labeling is not soc.labeling
    assert context.stats()["misses"]["labeling"] == 2


def test_distinct_rtree_keys_do_not_collide():
    context = BuildContext(_network())
    condensed = context.condensed()
    spa = SpaReach(condensed, context=context)
    three = ThreeDReach(condensed, context=context)
    rev = ThreeDReachRev(condensed, context=context)
    engine = GeosocialQueryEngine(condensed, context=context)
    trees = {id(spa.rtree), id(three.rtree), id(rev.rtree), id(engine._rtree)}
    assert len(trees) == 4


def test_explicit_labeling_bypasses_context_cache():
    from repro.labeling import build_labeling

    condensed = condense_network(_network())
    context = BuildContext(condensed)
    labeling = build_labeling(condensed.dag, post_stride=2)
    method = ThreeDReach(condensed, labeling=labeling, context=context)
    assert method.labeling is labeling
    # No labeling or R-tree went through the context.
    stats = context.stats()
    assert stats["misses"].get("labeling", 0) == 0
    assert stats["misses"].get("rtree", 0) == 0


def test_build_methods_equals_build_method_answers():
    network = _network()
    condensed = condense_network(network)
    names = ["spareach-bfl", "socreach", "3dreach", "3dreach-rev", "georeach"]
    shared = build_methods(names, condensed)
    for name in names:
        independent = build_method(name, condensed)
        for v in range(network.num_vertices):
            from repro.geometry import Rect

            for region in (Rect(0, 0, 3, 3), Rect(7, 7, 9, 9), Rect(4, 4, 5, 5)):
                assert shared[name].query(v, region) == independent.query(
                    v, region
                ), f"{name} diverged at v={v}, region={region}"


def test_build_methods_validates_names_and_options():
    condensed = condense_network(_network())
    with pytest.raises(ValueError, match="unknown method"):
        build_methods(["no-such-method"], condensed)
    with pytest.raises(ValueError, match="not being built"):
        build_methods(["socreach"], condensed, options={"3dreach": {}})
    with pytest.raises(ValueError, match="network or a context"):
        build_methods(["socreach"])


def test_build_methods_dedupes_and_passes_options():
    condensed = condense_network(_network())
    methods = build_methods(
        ["socreach", "socreach", "3dreach"],
        condensed,
        options={"3dreach": {"scc_mode": "mbr"}},
    )
    assert list(methods) == ["socreach", "3dreach"]
    assert methods["3dreach"].name == "3dreach-mbr"


def test_pipeline_obs_counters():
    obs.REGISTRY.reset()
    with obs.observability(True):
        context = BuildContext(_network())
        build_methods(
            ["spareach-bfl", "spareach-int", "socreach", "3dreach",
             "3dreach-rev", "georeach"],
            context=context,
        )
    misses = obs.REGISTRY.value(
        "repro_pipeline_cache_misses_total", artifact="labeling"
    )
    assert misses == len(context.labeling_builds()) == 2
    assert (
        obs.REGISTRY.value(
            "repro_pipeline_cache_misses_total", artifact="condense"
        )
        == 1
    )
    # spareach-int reuses spareach-bfl's 2-D R-tree: at least one hit.
    assert (
        obs.REGISTRY.value("repro_pipeline_cache_hits_total", artifact="rtree")
        >= 1
    )


def test_pipeline_counters_silent_when_disabled():
    obs.REGISTRY.reset()
    with obs.observability(False):
        context = BuildContext(_network())
        context.labeling()
        context.labeling()
    assert obs.REGISTRY.value(
        "repro_pipeline_cache_misses_total", artifact="labeling"
    ) == 0
    # Local stats still track.
    stats = context.stats()
    assert stats["misses"]["labeling"] == 1
    assert stats["hits"]["labeling"] == 1


def test_generic_rtree_entries_called_once():
    context = BuildContext(_network())
    calls = []

    def entries():
        calls.append(1)
        return [((0.0, 0.0, 1.0, 1.0), 0)]

    first = context.rtree("custom", 2, 8, entries)
    second = context.rtree("custom", 2, 8, entries)
    assert first is second
    assert len(calls) == 1
    # A different capacity is a different artifact.
    third = context.rtree("custom", 2, 4, entries)
    assert third is not first
    assert len(calls) == 2
