"""Unit tests for repro.relational.bptree."""

import random

import pytest

from repro.relational import BPlusTree


def test_order_validation():
    with pytest.raises(ValueError):
        BPlusTree(order=3)


def test_empty_tree():
    tree = BPlusTree()
    assert len(tree) == 0
    assert tree.get(5) is None
    assert tree.get(5, "x") == "x"
    assert 5 not in tree
    assert list(tree.range_scan(0, 100)) == []
    assert tree.height() == 1


def test_insert_and_get():
    tree = BPlusTree(order=4)
    for k in (5, 1, 9, 3, 7):
        tree.insert(k, f"v{k}")
    assert len(tree) == 5
    for k in (5, 1, 9, 3, 7):
        assert tree.get(k) == f"v{k}"
        assert k in tree
    assert tree.get(2) is None


def test_insert_overwrites_existing_key():
    tree = BPlusTree()
    tree.insert(1, "a")
    tree.insert(1, "b")
    assert len(tree) == 1
    assert tree.get(1) == "b"


def test_splits_grow_height():
    tree = BPlusTree(order=4)
    for k in range(100):
        tree.insert(k, k)
    assert tree.height() >= 3
    tree.check_invariants()
    assert [k for k, _ in tree.items()] == list(range(100))


def test_random_insert_order_matches_dict(seed=0):
    rng = random.Random(seed)
    keys = rng.sample(range(10_000), 500)
    tree = BPlusTree(order=8)
    reference = {}
    for k in keys:
        tree.insert(k, -k)
        reference[k] = -k
    tree.check_invariants()
    for k in keys:
        assert tree.get(k) == reference[k]
    assert sorted(reference) == [k for k, _ in tree.items()]


def test_range_scan_inclusive():
    tree = BPlusTree(order=4)
    for k in range(0, 50, 5):  # 0, 5, ..., 45
        tree.insert(k, k)
    assert [k for k, _ in tree.range_scan(10, 30)] == [10, 15, 20, 25, 30]
    assert [k for k, _ in tree.range_scan(11, 14)] == []
    assert [k for k, _ in tree.range_scan(45, 100)] == [45]
    assert list(tree.range_scan(30, 10)) == []


def test_range_scan_matches_reference_randomized():
    rng = random.Random(3)
    keys = sorted(rng.sample(range(1000), 200))
    tree = BPlusTree.from_sorted([(k, k) for k in keys], order=6)
    tree.check_invariants()
    for _ in range(50):
        lo = rng.randrange(-50, 1100)
        hi = lo + rng.randrange(0, 300)
        expected = [k for k in keys if lo <= k <= hi]
        assert [k for k, _ in tree.range_scan(lo, hi)] == expected


def test_from_sorted_validation():
    with pytest.raises(ValueError):
        BPlusTree.from_sorted([(2, "a"), (2, "b")])
    with pytest.raises(ValueError):
        BPlusTree.from_sorted([(3, "a"), (1, "b")])


def test_from_sorted_then_insert():
    tree = BPlusTree.from_sorted([(k, k) for k in range(0, 100, 2)], order=8)
    for k in range(1, 100, 2):
        tree.insert(k, k)
    tree.check_invariants()
    assert [k for k, _ in tree.items()] == list(range(100))


def test_from_sorted_empty():
    tree = BPlusTree.from_sorted([])
    assert len(tree) == 0


def test_negative_keys():
    tree = BPlusTree(order=4)
    for k in (-5, -1, -100, 3):
        tree.insert(k, k)
    assert [k for k, _ in tree.range_scan(-10, 0)] == [-5, -1]
