"""Unit tests for repro.labeling.intervals."""

from repro.labeling import (
    compress_intervals,
    intervals_cover,
    intervals_covered_count,
)
from repro.labeling.intervals import intervals_equal_coverage, intervals_union


def test_compress_empty():
    assert compress_intervals([]) == ()


def test_compress_absorbs_subsumed():
    # Paper example: [3,5] absorbs [4,5].
    assert compress_intervals([(3, 5), (4, 5)]) == ((3, 5),)


def test_compress_merges_overlapping_at_endpoint():
    # Paper example: [1,4] and [4,5] merge into [1,5].
    assert compress_intervals([(1, 4), (4, 5)]) == ((1, 5),)


def test_compress_merges_integer_adjacent():
    # Integer domains: [1,4] and [5,7] cover the contiguous 1..7.  This is
    # what collapses singleton chains like [1,1]..[9,9] into [1,9].
    assert compress_intervals([(1, 4), (5, 7)]) == ((1, 7),)
    singletons = [(i, i) for i in range(1, 10)]
    assert compress_intervals(singletons) == ((1, 9),)


def test_compress_keeps_gaps():
    assert compress_intervals([(1, 2), (5, 6)]) == ((1, 2), (5, 6))


def test_compress_unsorted_input():
    assert compress_intervals([(8, 9), (1, 2), (4, 5), (2, 3)]) == (
        (1, 5),
        (8, 9),
    )


def test_compress_idempotent():
    compressed = compress_intervals([(1, 3), (7, 9), (2, 5)])
    assert compress_intervals(compressed) == compressed


def test_intervals_cover():
    labels = ((1, 3), (7, 9), (15, 15))
    for v in (1, 2, 3, 7, 9, 15):
        assert intervals_cover(labels, v)
    for v in (0, 4, 6, 10, 14, 16):
        assert not intervals_cover(labels, v)


def test_intervals_cover_empty():
    assert not intervals_cover((), 5)


def test_intervals_covered_count():
    assert intervals_covered_count(((1, 3), (7, 9))) == 6
    assert intervals_covered_count(()) == 0
    assert intervals_covered_count(((4, 4),)) == 1


def test_intervals_equal_coverage():
    assert intervals_equal_coverage([(1, 2), (3, 4)], [(1, 4)])
    assert not intervals_equal_coverage([(1, 2)], [(1, 3)])


def test_intervals_union():
    assert intervals_union([(1, 2)], [(4, 4)], [(3, 3)]) == ((1, 4),)
    assert intervals_union() == ()
