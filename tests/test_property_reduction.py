"""Property-based tests for DAG reductions."""

from hypothesis import given, settings, strategies as st

from repro.graph import DiGraph, reduce_dag, transitive_reduction
from repro.graph.traversal import is_acyclic, path_exists


@st.composite
def dags(draw, max_vertices=12):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=35)) if possible else []
    return DiGraph.from_edges(n, edges)


@given(dags())
@settings(max_examples=50, deadline=None)
def test_transitive_reduction_preserves_reachability(dag):
    reduced = transitive_reduction(dag)
    n = dag.num_vertices
    assert reduced.num_edges <= dag.num_edges
    for u in range(n):
        for v in range(n):
            assert path_exists(dag, u, v) == path_exists(reduced, u, v)


@given(dags())
@settings(max_examples=40, deadline=None)
def test_transitive_reduction_is_minimal(dag):
    # Removing any surviving edge must lose some reachability.
    reduced = transitive_reduction(dag)
    edges = list(reduced.edges())
    for s, t in edges:
        pruned = DiGraph(reduced.num_vertices)
        for a, b in edges:
            if (a, b) != (s, t):
                pruned.add_edge(a, b)
        assert not path_exists(pruned, s, t), (
            f"edge ({s}, {t}) was redundant but survived"
        )


@given(dags())
@settings(max_examples=50, deadline=None)
def test_reduce_dag_preserves_reachability(dag):
    reduced = reduce_dag(dag)
    assert is_acyclic(reduced.dag)
    rep = reduced.representative_of
    n = dag.num_vertices
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            expected = path_exists(dag, u, v)
            got = rep[u] != rep[v] and path_exists(reduced.dag, rep[u], rep[v])
            assert got == expected


@given(dags())
@settings(max_examples=50, deadline=None)
def test_reduce_dag_never_grows(dag):
    reduced = reduce_dag(dag)
    assert reduced.dag.num_vertices <= dag.num_vertices
    assert reduced.dag.num_edges <= dag.num_edges
