"""Unit tests for the repro.obs span tracer."""

import pytest

from repro import obs
from repro.obs.trace import _NOOP_SPAN, active_trace, span, tracing


def test_span_is_noop_outside_trace():
    assert not tracing()
    assert active_trace() is None
    # Without an active trace, span() hands back the shared no-op —
    # no allocation on the inactive fast path.
    assert span("anything") is _NOOP_SPAN
    with span("anything"):
        pass  # must be harmless


def test_trace_records_nested_spans():
    with obs.trace("query") as t:
        assert tracing()
        assert active_trace() is t
        with span("phase-a"):
            with span("phase-a.inner"):
                pass
        with span("phase-b"):
            pass
    assert not tracing()
    root = t.root
    assert root.name == "query"
    assert [c.name for c in root.children] == ["phase-a", "phase-b"]
    assert [c.name for c in root.children[0].children] == ["phase-a.inner"]
    # walk() is pre-order with depths.
    assert [(d, s.name) for d, s in root.walk()] == [
        (0, "query"),
        (1, "phase-a"),
        (2, "phase-a.inner"),
        (1, "phase-b"),
    ]
    # Timings are monotonic and nested.
    assert root.duration >= 0
    for _, node in root.walk():
        assert node.end >= node.start
        assert root.start <= node.start and node.end <= root.end


def test_trace_captures_counter_deltas():
    counter = obs.REGISTRY.counter("trace_test_total")
    with obs.trace("query") as t:
        with span("work"):
            counter.inc(3)
        with span("idle"):
            pass
    work, idle = t.root.children
    assert work.counters == {"trace_test_total": 3}
    assert idle.counters == {}
    # The root sees its children's work.
    assert t.root.counters == {"trace_test_total": 3}


def test_traces_do_not_nest():
    with obs.trace("outer"):
        with pytest.raises(RuntimeError):
            with obs.trace("inner"):
                pass
    # The failed inner trace must not have corrupted the module state.
    assert not tracing()
    with obs.trace("again") as t:
        pass
    assert t.root.name == "again"


def test_format_output():
    counter = obs.REGISTRY.counter("fmt_test_total")
    with obs.trace("query") as t:
        with span("child"):
            counter.inc(2)
    text = t.format()
    lines = text.splitlines()
    assert lines[0].startswith("query")
    assert lines[1].startswith("  child")
    assert "us" in lines[0]
    assert "fmt_test_total=2" in lines[1]


def test_method_spans_appear_in_trace():
    from helpers import FIG1_INDEX, FIG1_REGION, fig1_network
    from repro.core import ThreeDReach
    from repro.geosocial import condense_network

    method = ThreeDReach(condense_network(fig1_network()))
    with obs.trace("query") as t:
        method.query(FIG1_INDEX["a"], FIG1_REGION)
    names = [s.name for _, s in t.root.walk()]
    assert "3dreach.query" in names
    query_span = t.root.children[0]
    assert query_span.counters.get(
        'repro_method_queries_total{method="3dreach"}'
    ) == 1
