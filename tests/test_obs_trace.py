"""Unit tests for the repro.obs span tracer."""

import threading

import pytest

from repro import obs
from repro.obs.trace import (
    _NOOP_SPAN,
    active_trace,
    capture,
    new_trace_id,
    parse_traceparent,
    span,
    tracing,
    valid_request_id,
)


def test_span_is_noop_outside_trace():
    assert not tracing()
    assert active_trace() is None
    # Without an active trace, span() hands back the shared no-op —
    # no allocation on the inactive fast path.
    assert span("anything") is _NOOP_SPAN
    with span("anything"):
        pass  # must be harmless


def test_trace_records_nested_spans():
    with obs.trace("query") as t:
        assert tracing()
        assert active_trace() is t
        with span("phase-a"):
            with span("phase-a.inner"):
                pass
        with span("phase-b"):
            pass
    assert not tracing()
    root = t.root
    assert root.name == "query"
    assert [c.name for c in root.children] == ["phase-a", "phase-b"]
    assert [c.name for c in root.children[0].children] == ["phase-a.inner"]
    # walk() is pre-order with depths.
    assert [(d, s.name) for d, s in root.walk()] == [
        (0, "query"),
        (1, "phase-a"),
        (2, "phase-a.inner"),
        (1, "phase-b"),
    ]
    # Timings are monotonic and nested.
    assert root.duration >= 0
    for _, node in root.walk():
        assert node.end >= node.start
        assert root.start <= node.start and node.end <= root.end


def test_trace_captures_counter_deltas():
    counter = obs.REGISTRY.counter("trace_test_total")
    with obs.trace("query") as t:
        with span("work"):
            counter.inc(3)
        with span("idle"):
            pass
    work, idle = t.root.children
    assert work.counters == {"trace_test_total": 3}
    assert idle.counters == {}
    # The root sees its children's work.
    assert t.root.counters == {"trace_test_total": 3}


def test_traces_do_not_nest():
    with obs.trace("outer"):
        with pytest.raises(RuntimeError):
            with obs.trace("inner"):
                pass
    # The failed inner trace must not have corrupted the module state.
    assert not tracing()
    with obs.trace("again") as t:
        pass
    assert t.root.name == "again"


def test_format_output():
    counter = obs.REGISTRY.counter("fmt_test_total")
    with obs.trace("query") as t:
        with span("child"):
            counter.inc(2)
    text = t.format()
    lines = text.splitlines()
    assert lines[0].startswith("query")
    assert lines[1].startswith("  child")
    assert "us" in lines[0]
    assert "fmt_test_total=2" in lines[1]


def test_method_spans_appear_in_trace():
    from helpers import FIG1_INDEX, FIG1_REGION, fig1_network
    from repro.core import ThreeDReach
    from repro.geosocial import condense_network

    method = ThreeDReach(condense_network(fig1_network()))
    with obs.trace("query") as t:
        method.query(FIG1_INDEX["a"], FIG1_REGION)
    names = [s.name for _, s in t.root.walk()]
    assert "3dreach.query" in names
    query_span = t.root.children[0]
    assert query_span.counters.get(
        'repro_method_queries_total{method="3dreach"}'
    ) == 1


def test_counters_false_disables_sampling_for_whole_trace():
    counter = obs.REGISTRY.counter("trace_nocount_total")
    with obs.trace("query", counters=False) as t:
        with span("work"):
            counter.inc(5)
    assert t.root.counters == {}
    assert t.root.children[0].counters == {}


def test_trace_ids_and_request_id_validation():
    tid = new_trace_id()
    assert len(tid) == 32 and int(tid, 16) >= 0
    with obs.trace("query", trace_id="my-req-1") as t:
        pass
    assert t.trace_id == "my-req-1"
    # traceparent: version-traceid-parentid-flags.
    header = f"00-{tid}-00f067aa0ba902b7-01"
    assert parse_traceparent(header) == tid
    assert parse_traceparent(header.upper()) == tid.lower()
    assert parse_traceparent(None) is None
    assert parse_traceparent("") is None
    assert parse_traceparent("00-zz-00f067aa0ba902b7-01") is None
    assert parse_traceparent(f"00-{tid}-01") is None  # missing field
    assert parse_traceparent(f"00-{'0' * 32}-00f067aa0ba902b7-01") is None
    assert valid_request_id("abc-123.X_z")
    assert valid_request_id(tid)
    assert not valid_request_id(None)
    assert not valid_request_id("")
    assert not valid_request_id("has space")
    assert not valid_request_id("x" * 65)


def test_capture_attach_stitches_worker_subtree():
    with obs.trace("query") as t:
        with span("exec"):
            ctx = capture()
            assert ctx is not None
            assert ctx.trace_id == t.trace_id

            def work():
                with ctx.attach("chunk"):
                    with span("inner"):
                        pass

            worker = threading.Thread(target=work)
            worker.start()
            worker.join()  # the captured span stays open until joined
    exec_span = t.root.children[0]
    assert [c.name for c in exec_span.children] == ["chunk"]
    assert [c.name for c in exec_span.children[0].children] == ["inner"]


def test_capture_returns_none_outside_trace():
    assert capture() is None


def test_attach_after_captured_span_closed_drops_subtree():
    with obs.trace("query") as t:
        with span("exec"):
            ctx = capture()
    # The captured span (and trace) already closed — e.g. a batch timed
    # out and abandoned this chunk.  The late subtree must be dropped,
    # not stitched into a tree the recorder may be serializing.
    with ctx.attach("late-chunk"):
        pass
    exec_span = t.root.children[0]
    assert exec_span.children == []


def test_worker_spans_do_not_leak_into_worker_thread_state():
    with obs.trace("query"):
        with span("exec"):
            ctx = capture()
            state: dict = {}

            def work():
                with ctx.attach("chunk"):
                    pass
                # After detaching, the worker thread is traceless again.
                state["tracing_after"] = tracing()
                state["span_after"] = span("x") is _NOOP_SPAN

            worker = threading.Thread(target=work)
            worker.start()
            worker.join()
    assert state == {"tracing_after": False, "span_after": True}


def test_concurrent_traces_do_not_cross_talk():
    # The thread-safety regression test: many threads tracing at once,
    # each with its own span names; no span may leak across traces.
    results: list[tuple[str, list[str]]] = []
    errors: list[BaseException] = []
    barrier = threading.Barrier(8)

    def run(index: int) -> None:
        try:
            barrier.wait()
            for repeat in range(25):
                with obs.trace(f"t{index}") as t:
                    with span(f"t{index}.a"):
                        with span(f"t{index}.deep"):
                            pass
                    with span(f"t{index}.b"):
                        pass
                names = [s.name for _, s in t.root.walk()]
                results.append((f"t{index}", names))
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(results) == 8 * 25
    for owner, names in results:
        assert names == [
            owner, f"{owner}.a", f"{owner}.deep", f"{owner}.b"
        ], f"{owner} trace captured foreign spans: {names}"


def test_to_dict_span_budget_counts_dropped():
    with obs.trace("query", counters=False) as t:
        for _ in range(10):
            with span("child"):
                pass
    full = t.root.to_dict()
    assert len(full["children"]) == 10
    assert "dropped_spans" not in full
    budgeted = t.root.to_dict(max_spans=4)
    # Budget 4 = root + 3 children; the other 7 are counted, not kept.
    assert len(budgeted["children"]) == 3
    assert budgeted["dropped_spans"] == 7
    assert t.root.span_count() == 11


def test_stage_seconds_sums_same_name_spans():
    with obs.trace("query", counters=False) as t:
        with span("admit"):
            pass
        with span("exec"):
            pass
        with span("admit"):  # e.g. exit bookkeeping reuses the name
            pass
    stages = t.stage_seconds()
    assert set(stages) == {"admit", "exec"}
    total = sum(stages.values())
    assert total <= t.duration
    assert t.attributed_fraction() == pytest.approx(
        total / t.duration
    )
