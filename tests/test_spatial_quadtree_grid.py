"""Unit tests for the SOP point indexes (quadtree, uniform grid)."""

import random

import pytest

from repro.geometry import Rect
from repro.spatial import LinearScanIndex, QuadTree, UniformGridIndex

UNIT = Rect(0, 0, 1, 1)


def random_point_entries(rng, n):
    return [
        ((x, y, x, y), i)
        for i, (x, y) in enumerate(
            (rng.random(), rng.random()) for _ in range(n)
        )
    ]


# ----------------------------------------------------------------------
# QuadTree
# ----------------------------------------------------------------------
def test_quadtree_validation():
    with pytest.raises(ValueError):
        QuadTree(UNIT, leaf_capacity=0)
    with pytest.raises(ValueError):
        QuadTree(UNIT, max_depth=0)
    with pytest.raises(ValueError):
        QuadTree(Rect(0, 0, 0, 1))
    tree = QuadTree(UNIT)
    with pytest.raises(ValueError):
        tree.insert_point((2.0, 0.5), "outside")
    with pytest.raises(ValueError):
        QuadTree.bulk_load([((0, 0, 1, 1), "box")], UNIT)


def test_quadtree_empty():
    tree = QuadTree(UNIT)
    assert len(tree) == 0
    assert tree.search_all((0, 0, 1, 1)) == []
    assert tree.any_intersecting((0, 0, 1, 1)) is None


def test_quadtree_splits():
    tree = QuadTree(UNIT, leaf_capacity=2)
    rng = random.Random(1)
    for i in range(50):
        tree.insert_point((rng.random(), rng.random()), i)
    assert tree.depth() >= 2
    assert len(tree) == 50


def test_quadtree_matches_linear_scan():
    rng = random.Random(2)
    entries = random_point_entries(rng, 300)
    tree = QuadTree.bulk_load(entries, UNIT, leaf_capacity=4)
    reference = LinearScanIndex.bulk_load(entries, dims=2)
    for _ in range(40):
        x, y = rng.random() * 0.8, rng.random() * 0.8
        query = (x, y, x + rng.random() * 0.3, y + rng.random() * 0.3)
        assert sorted(tree.search_all(query)) == sorted(
            reference.search_all(query)
        )


def test_quadtree_duplicate_points_bounded_by_max_depth():
    tree = QuadTree(UNIT, leaf_capacity=2, max_depth=4)
    for i in range(20):
        tree.insert_point((0.5, 0.5), i)
    assert len(tree) == 20
    assert tree.depth() <= 4
    assert sorted(tree.search_all((0.5, 0.5, 0.5, 0.5))) == list(range(20))


def test_quadtree_boundary_points():
    tree = QuadTree(UNIT, leaf_capacity=1)
    tree.insert_point((0.0, 0.0), "sw")
    tree.insert_point((1.0, 1.0), "ne")
    tree.insert_point((0.5, 0.5), "mid")
    assert sorted(tree.search_all((0, 0, 1, 1))) == ["mid", "ne", "sw"]


# ----------------------------------------------------------------------
# UniformGridIndex
# ----------------------------------------------------------------------
def test_grid_validation():
    with pytest.raises(ValueError):
        UniformGridIndex(UNIT, cells_per_side=0)
    with pytest.raises(ValueError):
        UniformGridIndex(Rect(0, 0, 1, 0))
    grid = UniformGridIndex(UNIT, 4)
    with pytest.raises(ValueError):
        grid.insert_point((1.5, 0.5), "outside")
    with pytest.raises(ValueError):
        UniformGridIndex.bulk_load([((0, 0, 1, 1), "box")], UNIT)


def test_grid_matches_linear_scan():
    rng = random.Random(4)
    entries = random_point_entries(rng, 300)
    grid = UniformGridIndex.bulk_load(entries, UNIT)
    reference = LinearScanIndex.bulk_load(entries, dims=2)
    for _ in range(40):
        x, y = rng.random() * 0.8, rng.random() * 0.8
        query = (x, y, x + rng.random() * 0.3, y + rng.random() * 0.3)
        assert sorted(grid.search_all(query)) == sorted(
            reference.search_all(query)
        )


def test_grid_query_outside_extent():
    grid = UniformGridIndex(UNIT, 4)
    grid.insert_point((0.5, 0.5), "a")
    assert grid.search_all((2, 2, 3, 3)) == []
    assert grid.search_all((-3, -3, -2, -2)) == []
    # overlapping query still finds the point
    assert grid.search_all((-1, -1, 2, 2)) == ["a"]


def test_grid_auto_resolution():
    rng = random.Random(5)
    grid = UniformGridIndex.bulk_load(random_point_entries(rng, 400), UNIT)
    assert grid.cells_per_side >= 8
    assert len(grid) == 400


def test_grid_count_and_any():
    grid = UniformGridIndex(UNIT, 8)
    for i in range(10):
        grid.insert_point((i / 10 + 0.01, 0.5), i)
    assert grid.count_intersecting((0, 0, 1, 1)) == 10
    assert grid.any_intersecting((0.0, 0.4, 0.3, 0.6)) in (0, 1, 2)
