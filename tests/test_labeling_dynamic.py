"""Unit tests for repro.labeling.dynamic (incremental maintenance)."""

import random

import pytest

from helpers import fig1_graph, random_dag
from repro.graph import DiGraph
from repro.graph.traversal import all_reachable_sets
from repro.labeling import DynamicIntervalLabeling


def test_empty_start():
    dyn = DynamicIntervalLabeling()
    assert dyn.num_vertices == 0
    v = dyn.add_vertex()
    assert v == 0
    assert dyn.greach(0, 0)
    assert list(dyn.descendants(0)) == [0]


def test_bootstrap_from_existing_dag():
    g = fig1_graph()
    dyn = DynamicIntervalLabeling(g)
    truth = all_reachable_sets(g)
    for v in range(g.num_vertices):
        assert set(dyn.descendants(v)) == truth[v]


def test_incremental_edge_insertion_matches_truth():
    rng = random.Random(31)
    for _ in range(10):
        target = random_dag(rng, 15, edge_probability=0.2)
        dyn = DynamicIntervalLabeling()
        for _ in range(15):
            dyn.add_vertex()
        edges = list(target.edges())
        rng.shuffle(edges)  # any insertion order must work
        for s, t in edges:
            dyn.add_edge(s, t)
        truth = all_reachable_sets(target)
        for v in range(15):
            assert set(dyn.descendants(v)) == truth[v]
            assert dyn.num_descendants(v) == len(truth[v])


def test_mixed_vertex_and_edge_growth():
    dyn = DynamicIntervalLabeling()
    a = dyn.add_vertex()
    b = dyn.add_vertex()
    dyn.add_edge(a, b)
    c = dyn.add_vertex()
    dyn.add_edge(b, c)
    assert dyn.greach(a, c)
    d = dyn.add_vertex()
    dyn.add_edge(d, a)
    assert dyn.greach(d, c)
    assert not dyn.greach(c, a)


def test_cycle_insertion_rejected():
    dyn = DynamicIntervalLabeling(DiGraph.from_edges(3, [(0, 1), (1, 2)]))
    with pytest.raises(ValueError, match="cycle"):
        dyn.add_edge(2, 0)
    with pytest.raises(ValueError, match="cycle"):
        dyn.add_edge(0, 0)
    # state unchanged
    assert not dyn.greach(2, 0)
    assert dyn.greach(0, 2)


def test_duplicate_edge_is_noop():
    dyn = DynamicIntervalLabeling(DiGraph.from_edges(2, [(0, 1)]))
    before = dyn.labels_of(0)
    dyn.add_edge(0, 1)
    assert dyn.labels_of(0) == before


def test_vertex_bounds_checked():
    dyn = DynamicIntervalLabeling()
    dyn.add_vertex()
    with pytest.raises(IndexError):
        dyn.add_edge(0, 5)


def test_remove_edge_triggers_rebuild():
    g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
    dyn = DynamicIntervalLabeling(g)
    assert dyn.greach(0, 2)
    dyn.remove_edge(1, 2)
    assert dyn.needs_rebuild
    assert not dyn.greach(0, 2)   # rebuilt lazily here
    assert not dyn.needs_rebuild
    assert dyn.greach(0, 1)


def test_remove_missing_edge_rejected():
    dyn = DynamicIntervalLabeling(DiGraph(2))
    with pytest.raises(ValueError):
        dyn.remove_edge(0, 1)


def test_interleaved_insert_delete_random():
    rng = random.Random(77)
    n = 12
    dyn = DynamicIntervalLabeling(DiGraph(n))
    shadow = DiGraph(n)
    present: list[tuple[int, int]] = []
    for _ in range(120):
        if present and rng.random() < 0.3:
            s, t = present.pop(rng.randrange(len(present)))
            dyn.remove_edge(s, t)
            shadow.remove_edge(s, t)
        else:
            s, t = rng.randrange(n), rng.randrange(n)
            if s == t or (s, t) in present:
                continue
            try:
                dyn.add_edge(s, t)
            except ValueError:
                continue  # would create a cycle
            shadow.add_edge(s, t)
            present.append((s, t))
        if rng.random() < 0.25:
            truth = all_reachable_sets(shadow)
            for v in range(n):
                assert set(dyn.descendants(v)) == truth[v]
    truth = all_reachable_sets(shadow)
    for v in range(n):
        assert set(dyn.descendants(v)) == truth[v]


def test_adds_after_deletion_are_picked_up_by_rebuild():
    dyn = DynamicIntervalLabeling(DiGraph.from_edges(4, [(0, 1), (2, 3)]))
    dyn.remove_edge(0, 1)
    dyn.add_edge(1, 2)  # inserted while dirty
    assert dyn.greach(1, 3)
    assert not dyn.greach(0, 1)
