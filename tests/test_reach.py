"""Unit tests for all reachability indexes (repro.reach)."""

import random

import pytest

from helpers import fig1_graph, random_dag
from repro.graph import DiGraph
from repro.graph.traversal import all_reachable_sets
from repro.reach import (
    BfsReach,
    BflReach,
    ChainCoverReach,
    FelineReach,
    GrailReach,
    IntervalReach,
    PllReach,
    TransitiveClosureReach,
)
from repro.reach.base import ReachabilityIndex

ALL_INDEXES = [
    BfsReach,
    TransitiveClosureReach,
    BflReach,
    IntervalReach,
    PllReach,
    GrailReach,
    FelineReach,
    ChainCoverReach,
]


@pytest.mark.parametrize("factory", ALL_INDEXES)
def test_satisfies_protocol(factory):
    index = factory(DiGraph(2))
    assert isinstance(index, ReachabilityIndex)
    assert isinstance(index.name, str)


@pytest.mark.parametrize("factory", ALL_INDEXES)
def test_reflexive(factory):
    index = factory(DiGraph(3))
    for v in range(3):
        assert index.reaches(v, v)


@pytest.mark.parametrize("factory", ALL_INDEXES)
def test_chain(factory):
    g = DiGraph.from_edges(5, [(i, i + 1) for i in range(4)])
    index = factory(g)
    for u in range(5):
        for v in range(5):
            assert index.reaches(u, v) == (u <= v)


@pytest.mark.parametrize("factory", ALL_INDEXES)
def test_fig1_matches_truth(factory):
    g = fig1_graph()
    truth = all_reachable_sets(g)
    index = factory(g)
    for u in range(g.num_vertices):
        for v in range(g.num_vertices):
            assert index.reaches(u, v) == (v in truth[u]), (u, v)


@pytest.mark.parametrize("factory", ALL_INDEXES)
def test_random_dags_match_truth(factory):
    rng = random.Random(101)
    for _ in range(8):
        g = random_dag(rng, 20, edge_probability=0.18)
        truth = all_reachable_sets(g)
        index = factory(g)
        for u in range(20):
            for v in range(20):
                assert index.reaches(u, v) == (v in truth[u]), (u, v)


@pytest.mark.parametrize("factory", ALL_INDEXES)
def test_disconnected_graph(factory):
    g = DiGraph.from_edges(4, [(0, 1), (2, 3)])
    index = factory(g)
    assert index.reaches(0, 1)
    assert not index.reaches(0, 2)
    assert not index.reaches(1, 3)


@pytest.mark.parametrize(
    "factory",
    [TransitiveClosureReach, BflReach, IntervalReach, PllReach, GrailReach,
     FelineReach],
)
def test_size_bytes_positive(factory):
    g = random_dag(random.Random(2), 30, 0.1)
    assert factory(g).size_bytes() > 0


def test_bfs_reach_reports_zero_size():
    assert BfsReach(DiGraph(5)).size_bytes() == 0


# ----------------------------------------------------------------------
# Index-specific behaviour
# ----------------------------------------------------------------------
def test_tc_descendants():
    g = DiGraph.from_edges(4, [(0, 1), (1, 2)])
    tc = TransitiveClosureReach(g)
    assert tc.descendants(0) == [0, 1, 2]
    assert tc.num_descendants(0) == 3
    assert tc.descendants(3) == [3]


def test_tc_rejects_cyclic_graph():
    g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
    with pytest.raises(ValueError):
        TransitiveClosureReach(g)


def test_bfl_filter_bits_validation():
    with pytest.raises(ValueError):
        BflReach(DiGraph(1), filter_bits=4)


def test_bfl_small_filters_stay_correct():
    # Tiny filters force many inconclusive queries through the pruned-DFS
    # fallback; answers must remain exact.
    rng = random.Random(55)
    g = random_dag(rng, 25, edge_probability=0.15)
    truth = all_reachable_sets(g)
    index = BflReach(g, filter_bits=8)
    for u in range(25):
        for v in range(25):
            assert index.reaches(u, v) == (v in truth[u])


def test_bfl_deterministic_given_seed():
    g = random_dag(random.Random(7), 15, 0.2)
    a = BflReach(g, seed=3)
    b = BflReach(g, seed=3)
    assert a._out == b._out and a._in == b._in


def test_pll_rejects_cyclic_graph():
    g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
    with pytest.raises(ValueError):
        PllReach(g)


def test_pll_label_count_bounded_by_square():
    g = random_dag(random.Random(8), 20, 0.2)
    pll = PllReach(g)
    assert 2 * 20 <= pll.num_labels() <= 2 * 20 * 20


def test_grail_requires_traversals():
    with pytest.raises(ValueError):
        GrailReach(DiGraph(1), num_traversals=0)


def test_grail_more_traversals_still_exact():
    rng = random.Random(66)
    g = random_dag(rng, 18, 0.2)
    truth = all_reachable_sets(g)
    for k in (1, 5):
        index = GrailReach(g, num_traversals=k)
        for u in range(18):
            for v in range(18):
                assert index.reaches(u, v) == (v in truth[u])


def test_interval_reach_exposes_labeling():
    g = fig1_graph()
    index = IntervalReach(g)
    assert index.labeling.num_vertices == g.num_vertices


def test_chain_cover_chain_count_bounded():
    # A single path is one chain; an antichain is n chains.
    path = DiGraph.from_edges(6, [(i, i + 1) for i in range(5)])
    assert ChainCoverReach(path).num_chains == 1
    antichain = DiGraph(5)
    assert ChainCoverReach(antichain).num_chains == 5


def test_chain_cover_rejects_cyclic_graph():
    g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
    with pytest.raises(ValueError):
        ChainCoverReach(g)


def test_chain_cover_chains_partition_vertices():
    rng = random.Random(93)
    g = random_dag(rng, 20, edge_probability=0.2)
    index = ChainCoverReach(g)
    seen = {}
    for v in range(20):
        key = (index._chain_of[v], index._pos[v])
        assert key not in seen, "two vertices share a chain slot"
        seen[key] = v


def test_feline_rejects_cyclic_graph():
    g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
    with pytest.raises(ValueError):
        FelineReach(g)


def test_feline_dominance_is_necessary_condition():
    rng = random.Random(91)
    g = random_dag(rng, 20, edge_probability=0.2)
    index = FelineReach(g)
    truth = all_reachable_sets(g)
    for u in range(20):
        for v in truth[u]:
            # every reachable pair must pass the dominance filter
            assert index._dominates(u, v)


def test_feline_orders_are_both_topological():
    rng = random.Random(92)
    g = random_dag(rng, 20, edge_probability=0.2)
    index = FelineReach(g)
    for s, t in g.edges():
        assert index._x[s] < index._x[t]
        assert index._y[s] < index._y[t]
