"""Snapshots are kernel-backend independent: the full (save, load) matrix.

Kernels are derived, non-persisted artifacts — they live in the build
context's kernel cache, never in the snapshot artifact set — so a
snapshot written under one backend must warm-start under the other and
answer byte-identically.  Every (save_backend, load_backend) pair is
exercised, at both layers: raw ``BuildContext.save``/``load`` and the
serving ``GeosocialDatabase`` snapshot/warm-start cycle.
"""

from __future__ import annotations

import itertools
import random

import pytest

from kernel_helpers import BACKEND_PAIR, churn_network
from repro.core import build_methods
from repro.geometry import Rect
from repro.geosocial import condense_network
from repro.kernels import numpy_available
from repro.pipeline import BuildContext
from repro.system import GeosocialDatabase

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not importable"
)

METHODS = ["spareach-bfl", "georeach", "socreach", "3dreach", "3dreach-rev"]

MATRIX = list(itertools.product(BACKEND_PAIR, BACKEND_PAIR))


def _queries(n, count=25, seed=11):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        x1, x2 = sorted((rng.uniform(0, 10), rng.uniform(0, 10)))
        y1, y2 = sorted((rng.uniform(0, 10), rng.uniform(0, 10)))
        out.append((rng.randrange(n), Rect(x1, y1, x2, y2)))
    return out


@pytest.mark.parametrize("save_backend,load_backend", MATRIX)
def test_context_matrix(tmp_path, save_backend, load_backend):
    network = churn_network(21, n=40, edges=90)
    condensed = condense_network(network)
    context = BuildContext(condensed, kernels=save_backend)
    cold = build_methods(METHODS, context=context)
    context.save(tmp_path / "snap")
    warm_context = BuildContext.load(tmp_path / "snap", kernels=load_backend)
    assert warm_context.kernels == load_backend
    warm = build_methods(METHODS, context=warm_context)
    # The loaded context rebuilt nothing: kernels never enter the store.
    assert warm_context.labeling_builds() == []
    for vertex, region in _queries(network.num_vertices):
        for name in METHODS:
            assert cold[name].query(vertex, region) == warm[name].query(
                vertex, region
            ), f"{name} drifts across {save_backend}->{load_backend}"


@pytest.mark.parametrize("save_backend,load_backend", MATRIX)
def test_database_matrix(tmp_path, save_backend, load_backend):
    """Snapshot under one backend, warm-start under the other."""
    network = churn_network(22, n=40, edges=90)
    snap = str(tmp_path / "db")
    saved = GeosocialDatabase.from_network(
        network, snapshot_dir=snap, kernels=save_backend
    )
    queries = _queries(network.num_vertices)
    expected = saved.range_reach_many(queries)
    assert saved.stats()["snapshot_saves"] >= 1
    loaded = GeosocialDatabase(snapshot_dir=snap, kernels=load_backend)
    assert loaded.kernels == load_backend
    assert loaded.stats()["warm_starts"] == 1
    assert loaded.range_reach_many(queries) == expected
    # Vertex-to-vertex answers survive the backend switch too.
    rng = random.Random(3)
    n = network.num_vertices
    for _ in range(10):
        u = rng.randrange(n)
        targets = [rng.randrange(n) for _ in range(6)]
        assert loaded.reaches_many(u, targets) == saved.reaches_many(
            u, targets
        )
