"""Open-loop load generation: schedule, reconstruction, verification."""

import pytest

from repro.datasets import make_network
from repro.serve import QueryService, start_server
from repro.serve.loadgen import (
    Stage,
    _Op,
    _Outcome,
    build_schedule,
    final_network,
    overload_probe,
    parse_stages,
    reconcile_traces,
    run_schedule,
    summarize,
    verify_reads,
)
from repro.system import GeosocialDatabase


@pytest.fixture(scope="module")
def tiny_net():
    return make_network("gowalla", scale=0.0005, seed=3)


def test_parse_stages():
    assert parse_stages("50x2") == [Stage(50.0, 2.0)]
    assert parse_stages("50x2, 200x0.5") == [
        Stage(50.0, 2.0), Stage(200.0, 0.5)
    ]
    for bad in ("", "50", "x2", "0x2", "50x0", "fast"):
        with pytest.raises(ValueError):
            parse_stages(bad)


def test_schedule_is_deterministic_and_ordered(tiny_net):
    stages = parse_stages("80x1,160x0.5")
    first = build_schedule(tiny_net, stages, seed=9)
    second = build_schedule(tiny_net, stages, seed=9)
    assert [(op.at, op.path, op.payload) for op in first.ops] == [
        (op.at, op.path, op.payload) for op in second.ops
    ]
    times = [op.at for op in first.ops]
    assert times == sorted(times)
    assert times[-1] < 1.5
    kinds = {op.kind for op in first.ops}
    assert kinds == {"query", "batch", "write"}
    assert build_schedule(tiny_net, stages, seed=10).ops[0].payload != \
        first.ops[0].payload or True  # different seeds may still collide


def test_final_network_applies_only_acknowledged_writes(tiny_net):
    edges = set(tiny_net.graph.edges())
    follow = next(
        (u, v) for u, v in edges
        if tiny_net.kinds[u] == "user" and tiny_net.kinds[v] == "user"
    )
    users = [v for v, k in enumerate(tiny_net.kinds) if k == "user"]
    non_edges = (
        (u, v) for u in users for v in users
        if u != v and (u, v) not in edges and (u, v) != follow
    )
    new_pair = next(non_edges)
    rejected_pair = next(non_edges)

    def outcome(effect, code=200, body=None):
        op = _Op(0.0, 0, "write", "/write", {}, effect)
        return _Outcome(op, code, body or {}, 0.0, 0.0)

    outcomes = [
        outcome(("add", "follow", *new_pair)),
        outcome(("remove", "follow", *follow)),
        outcome(("new", "venue", 5.0, 6.0), body={"vertex":
                                                  tiny_net.num_vertices}),
        # Rejected write: must NOT be applied.
        outcome(("add", "follow", *rejected_pair), code=429),
    ]
    result = final_network(tiny_net, outcomes)
    result_edges = set(result.graph.edges())
    assert new_pair in result_edges
    assert follow not in result_edges
    assert rejected_pair not in result_edges
    assert result.num_vertices == tiny_net.num_vertices + 1
    assert result.kinds[-1] == "venue"
    assert result.points[-1].x == 5.0


def test_open_loop_run_verifies_against_oracle(tiny_net):
    database = GeosocialDatabase.from_network(tiny_net)
    service = QueryService(database)
    service.warm_up()
    server = start_server(service)
    base = f"http://127.0.0.1:{server.port}"
    try:
        schedule = build_schedule(
            tiny_net, parse_stages("60x1"), seed=13, write_fraction=0.3
        )
        outcomes = run_schedule(base, schedule)
        assert len(outcomes) == len(schedule.ops)
        report = summarize(schedule, outcomes)
        assert report["requests"] == len(schedule.ops)
        assert report["codes"].get("200", 0) == len(schedule.ops)
        assert report["latency"]["count"] > 0
        assert report["latency"]["p50_ms"] <= report["latency"]["p99_ms"]
        assert len(report["stages"]) == 1
        # Zero incorrect answers vs. the BFS oracle on the reconstructed
        # final network — the acceptance bar.
        network = final_network(tiny_net, outcomes)
        verdict = verify_reads(base, network, schedule.read_pairs)
        assert verdict["mismatches"] == 0
        assert verdict["queries"] > 0
    finally:
        server.drain(persist=False)


def test_overload_probe_triggers_429(tiny_net):
    database = GeosocialDatabase.from_network(tiny_net)
    service = QueryService(database, max_inflight=2)
    service.warm_up()
    server = start_server(service)
    base = f"http://127.0.0.1:{server.port}"
    try:
        verdict = overload_probe(
            base, service.max_inflight, network=tiny_net,
            batch_queries=512, rounds=8,
        )
        assert verdict["rejected"] > 0
        assert verdict["attempted"] >= 4
    finally:
        server.drain(persist=False)
    assert service.stats()["serve"]["rejected"] >= verdict["rejected"]


def test_summarize_empty_schedule(tiny_net):
    schedule = build_schedule(tiny_net, [Stage(10.0, 0.001)], seed=1)
    report = summarize(schedule, [])
    assert report["requests"] == 0
    assert report["latency"]["p99_ms"] == 0.0


def test_reconcile_traces_matches_server_recorder(tiny_net):
    database = GeosocialDatabase.from_network(tiny_net)
    service = QueryService(database)
    service.warm_up()
    server = start_server(service)
    base = f"http://127.0.0.1:{server.port}"
    try:
        schedule = build_schedule(
            tiny_net, parse_stages("50x1"), seed=21, write_fraction=0.2
        )
        # Every op got a deterministic request id at build time.
        rids = [op.rid for op in schedule.ops]
        assert all(rids) and len(set(rids)) == len(rids)
        assert rids[0].startswith("load-21-")
        outcomes = run_schedule(base, schedule)
        recon = reconcile_traces(base, outcomes, limit=10)
        assert recon["sampled"] > 0
        assert recon["missing"] == 0
        # The server-side trace fits inside the client-observed service
        # time for every sample, and stages cover most of it.
        assert recon["server_within_client"] == recon["sampled"]
        assert recon["attributed_fraction_min"] > 0.5
        assert recon["attributed_fraction_mean"] > 0.8
        assert recon["transport_gap_ms_max"] >= 0.0
        for row in recon["samples"]:
            assert row["kind"] in ("query", "batch")
            assert row["server_trace_ms"] <= row["client_service_ms"]
            assert 0.0 <= row["attributed_fraction"] <= 1.0
    finally:
        server.drain(persist=False)
