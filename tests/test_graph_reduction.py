"""Unit tests for repro.graph.reduction."""

import random

import pytest

from helpers import random_dag
from repro.graph import (
    DiGraph,
    equivalence_classes,
    reduce_dag,
    transitive_reduction,
)
from repro.graph.traversal import is_acyclic, path_exists


def test_transitive_reduction_removes_shortcut():
    g = DiGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
    r = transitive_reduction(g)
    assert sorted(r.edges()) == [(0, 1), (1, 2)]


def test_transitive_reduction_keeps_required_edges():
    g = DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    r = transitive_reduction(g)
    assert sorted(r.edges()) == sorted(g.edges())


def test_transitive_reduction_preserves_reachability():
    rng = random.Random(8)
    for _ in range(15):
        g = random_dag(rng, 14, edge_probability=0.3)
        r = transitive_reduction(g)
        assert r.num_edges <= g.num_edges
        for u in range(14):
            for v in range(14):
                assert path_exists(g, u, v) == path_exists(r, u, v)


def test_transitive_reduction_idempotent():
    rng = random.Random(9)
    g = random_dag(rng, 12, edge_probability=0.3)
    once = transitive_reduction(g)
    twice = transitive_reduction(once)
    assert sorted(once.edges()) == sorted(twice.edges())


def test_transitive_reduction_rejects_cycles():
    g = DiGraph.from_edges(2, [(0, 1), (1, 0)])
    with pytest.raises(ValueError):
        transitive_reduction(g)


def test_transitive_reduction_drops_parallel_edges():
    g = DiGraph.from_edges(2, [(0, 1), (0, 1)])
    r = transitive_reduction(g)
    assert list(r.edges()) == [(0, 1)]


def test_equivalence_classes_merge_twins():
    # 1 and 2 have identical ancestors {0} and descendants {3}.
    g = DiGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    classes = {frozenset(c) for c in equivalence_classes(g)}
    assert frozenset({1, 2}) in classes
    assert frozenset({0}) in classes
    assert frozenset({3}) in classes


def test_equivalence_classes_distinguish_chain():
    g = DiGraph.from_edges(3, [(0, 1), (1, 2)])
    classes = equivalence_classes(g)
    assert all(len(c) == 1 for c in classes)


def test_reduce_dag_shrinks_and_preserves_reachability():
    g = DiGraph.from_edges(
        6, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5), (0, 3)]
    )
    reduced = reduce_dag(g)
    assert is_acyclic(reduced.dag)
    assert reduced.dag.num_vertices < g.num_vertices
    rep = reduced.representative_of
    for u in range(6):
        for v in range(6):
            if u == v:
                continue
            expected = path_exists(g, u, v)
            if rep[u] == rep[v]:
                # equivalent distinct DAG vertices never reach each other
                assert not expected
            else:
                assert path_exists(reduced.dag, rep[u], rep[v]) == expected


def test_reduce_dag_random_preserves_reachability():
    rng = random.Random(10)
    for _ in range(10):
        g = random_dag(rng, 12, edge_probability=0.25)
        reduced = reduce_dag(g)
        rep = reduced.representative_of
        for u in range(12):
            for v in range(12):
                if u == v:
                    continue
                expected = path_exists(g, u, v)
                got = rep[u] != rep[v] and path_exists(
                    reduced.dag, rep[u], rep[v]
                )
                assert got == expected


def test_reduce_dag_classes_partition():
    rng = random.Random(11)
    g = random_dag(rng, 15, edge_probability=0.2)
    reduced = reduce_dag(g)
    all_vertices = sorted(v for c in reduced.classes for v in c)
    assert all_vertices == list(range(15))
