"""Online network growth with incremental label maintenance.

The paper defers network updates to future work; the library ships the
natural incremental extension (``DynamicIntervalLabeling``).  This
example simulates a live geosocial service: users sign up, follow each
other and check into venues, while reachability queries keep running —
no index rebuilds between insertions.

Run with::

    python examples/dynamic_growth.py
"""

import random
import time

from repro.labeling import DynamicIntervalLabeling


def main() -> None:
    rng = random.Random(4)
    labeling = DynamicIntervalLabeling()

    num_users, num_venues = 300, 120
    users = [labeling.add_vertex() for _ in range(num_users)]
    venues = [labeling.add_vertex() for _ in range(num_venues)]
    venue_set = set(venues)

    events = 0
    start = time.perf_counter()
    # Interleave follows and check-ins, exactly as they would arrive.
    for step in range(3000):
        if rng.random() < 0.6:
            a, b = rng.sample(users, 2)
            try:
                labeling.add_edge(a, b)       # a follows b
            except ValueError:
                continue                       # would close a cycle
        else:
            u = rng.choice(users)
            v = rng.choice(venues)
            labeling.add_edge(u, v)            # u checks into v
        events += 1
        if step % 1000 == 999:
            # Live query: how many venues can user 0 currently reach?
            reach = sum(
                1 for d in labeling.descendants(users[0]) if d in venue_set
            )
            print(f"after {events:5d} events: user 0 reaches {reach:3d} venues")
    elapsed = time.perf_counter() - start
    print(f"\n{events} insertions + live queries in {elapsed:.2f}s "
          f"({events / elapsed:,.0f} events/s)")

    # An unfollow arrives: deletions mark the labeling dirty and the next
    # query transparently rebuilds.
    some_user = users[1]
    follows = [t for t in labeling.graph.successors(some_user) if t < num_users]
    if follows:
        labeling.remove_edge(some_user, follows[0])
        print(f"\nremoved one follow of user {some_user}; "
              f"needs_rebuild={labeling.needs_rebuild}")
        reach = sum(1 for d in labeling.descendants(some_user) if d in venue_set)
        print(f"after lazy rebuild: user {some_user} reaches {reach} venues "
              f"(needs_rebuild={labeling.needs_rebuild})")


if __name__ == "__main__":
    main()
