"""A live geosocial service on top of the RangeReach machinery.

``GeosocialDatabase`` absorbs arbitrary updates — including mutual
follows (cycles) and unfollows, which static labelings cannot patch — and
serves the whole extended query family from an index snapshot plus a
write-ahead delta overlay: writes land in a delta log and queries are
answered as *base ∪ delta*, so a write no longer forces a full rebuild
before the next read.  This is the "incorporation into existing systems"
integration pattern from the paper's future work, upgraded with the
snapshot + overlay serving scheme of dynamic reachability systems.

Run with::

    python examples/geosocial_database.py
"""

import random
import time

from repro.geometry import Rect
from repro.system import GeosocialDatabase


def main() -> None:
    rng = random.Random(9)
    db = GeosocialDatabase(refresh_threshold=64)

    users = [db.add_user() for _ in range(250)]
    venues = [db.add_venue(rng.random(), rng.random()) for _ in range(400)]

    # Social bootstrap: mutual follow pairs (cycles!) plus one-way follows.
    for _ in range(600):
        a, b = rng.sample(users, 2)
        db.add_follow(a, b)
        if rng.random() < 0.5:
            db.add_follow(b, a)
    for _ in range(800):
        db.add_checkin(rng.choice(users), rng.choice(venues))

    downtown = Rect(0.4, 0.4, 0.6, 0.6)
    alice = users[0]

    start = time.perf_counter()
    reachable = db.count_reachable(alice, downtown)
    first_query = time.perf_counter() - start
    print(f"first query (includes snapshot build): {first_query * 1000:.1f} ms")
    print(f"alice reaches {reachable} downtown venues "
          f"(snapshot rebuilds so far: {db.num_rebuilds})")

    start = time.perf_counter()
    for _ in range(500):
        db.range_reach(rng.choice(users), downtown)
    warm = (time.perf_counter() - start) / 500
    print(f"warm queries: {warm * 1e6:.1f} us each "
          f"(rebuilds: {db.num_rebuilds})")

    # A write lands in the delta log; reads keep using the snapshot and
    # catch the new check-in through the overlay — no rebuild.
    bob = users[1]
    db.add_checkin(bob, db.add_venue(0.5, 0.5))
    print(f"\nafter a write: stale={db.is_stale}, delta ops={db.delta_size}")
    print(f"bob now reaches downtown: {db.range_reach(bob, downtown)} "
          f"(rebuilds: {db.num_rebuilds})")

    mixed_writes = 0
    for _ in range(80):
        if rng.random() < 0.5:
            db.add_checkin(rng.choice(users), rng.choice(venues))
        else:
            db.add_follow(*rng.sample(users, 2))
        mixed_writes += 1
        db.range_reach(rng.choice(users), downtown)
    counters = db.stats()
    print(f"\n{mixed_writes} more writes interleaved with reads:")
    print(f"  rebuilds:          {counters['rebuilds']}")
    print(f"  overlay queries:   {counters['overlay_queries']}")
    print(f"  threshold refresh: {counters['threshold_refreshes']} "
          f"(refresh_threshold={counters['refresh_threshold']})")

    nearest = db.nearest_reachable(alice, 0.5, 0.5)
    if nearest is not None:
        venue, distance = nearest
        print(f"\nnearest venue reachable by alice from the center: "
              f"venue {venue} at distance {distance:.3f}")


if __name__ == "__main__":
    main()
