"""Epidemic monitoring: can an outbreak reach a protected area?

The paper's third motivating use case: "in the study of infectious
diseases, RangeReach can assist on monitoring and understanding how they
spread in specific areas through human interaction."

A set of index cases is known.  Health authorities watch a few sensitive
zones (hospitals, care homes).  For every (case, zone) pair, a RangeReach
query decides whether the case's social activity — direct or through
contacts — can deposit spatial activity inside the zone.  We compare the
methods' answers and timings on the same alert workload.

Run with::

    python examples/epidemic_monitoring.py
"""

import random
import time

from repro import (
    GeoReach,
    Rect,
    SocReach,
    SpaReach,
    ThreeDReach,
    condense_network,
)
from repro.datasets import make_network


def main() -> None:
    network = make_network("yelp", scale=0.002, seed=23)
    condensed = condense_network(network)

    rng = random.Random(5)
    users = [v for v, k in enumerate(network.kinds) if k == "user"]
    index_cases = rng.sample(users, 30)

    # Three watched zones of decreasing size around venue hot spots.
    space = network.space()
    venues = network.spatial_vertices()
    zones = []
    for i, frac in enumerate((0.05, 0.02, 0.005)):
        center = network.point_of(venues[rng.randrange(len(venues))])
        side = (space.area * frac) ** 0.5
        zones.append(
            (
                f"zone {i} ({frac:.1%} of the city)",
                Rect(
                    center.x - side / 2, center.y - side / 2,
                    center.x + side / 2, center.y + side / 2,
                ),
            )
        )

    methods = [
        SpaReach(condensed, "bfl"),
        GeoReach(condensed),
        SocReach(condensed),
        ThreeDReach(condensed),
    ]

    print(f"{len(index_cases)} index cases x {len(zones)} watched zones\n")
    reference: dict[tuple[int, str], bool] = {}
    for method in methods:
        start = time.perf_counter()
        alerts = 0
        for case in index_cases:
            for zone_name, zone in zones:
                hit = method.query(case, zone)
                alerts += hit
                key = (case, zone_name)
                if key in reference:
                    assert reference[key] == hit, "methods disagree!"
                else:
                    reference[key] = hit
        elapsed = time.perf_counter() - start
        print(f"  {method.name:14s} {alerts:3d} alerts in {elapsed * 1000:7.1f} ms")

    print("\nper-zone exposure:")
    for zone_name, _zone in zones:
        exposed = sum(
            reference[(case, zone_name)] for case in index_cases
        )
        print(f"  {zone_name}: {exposed}/{len(index_cases)} cases can reach it")


if __name__ == "__main__":
    main()
