"""Quickstart: build a geosocial network and answer RangeReach queries.

Run with::

    python examples/quickstart.py

Builds the paper's running example (Figure 1), constructs every
evaluation method, and answers the two queries of Example 2.3:
RangeReach(G, a, R) = TRUE and RangeReach(G, c, R) = FALSE.
"""

from repro import (
    DiGraph,
    GeoReach,
    GeosocialNetwork,
    Point,
    RangeReachOracle,
    Rect,
    SocReach,
    SpaReach,
    ThreeDReach,
    ThreeDReachRev,
    condense_network,
)


def build_figure1_network() -> GeosocialNetwork:
    """The 12-vertex geosocial network of the paper's Figure 1."""
    names = list("abcdefghijkl")
    index = {name: i for i, name in enumerate(names)}
    edges = [
        ("a", "b"), ("a", "d"), ("a", "j"),
        ("b", "e"), ("b", "l"), ("b", "d"),
        ("e", "f"), ("l", "h"),
        ("j", "g"), ("j", "h"),
        ("g", "i"), ("i", "f"),
        ("c", "i"), ("c", "k"), ("c", "d"),
    ]
    graph = DiGraph.from_edges(
        len(names), [(index[s], index[t]) for s, t in edges]
    )
    locations = {
        "e": Point(4, 6), "h": Point(5, 5), "f": Point(1, 1),
        "g": Point(8, 2), "i": Point(9, 8), "l": Point(2, 9),
    }
    points = [locations.get(name) for name in names]
    return GeosocialNetwork(graph, points, name="figure-1")


def main() -> None:
    network = build_figure1_network()
    print(f"network: {network.num_vertices} vertices, "
          f"{network.num_edges} edges, {network.num_spatial} spatial")

    # All reachability machinery works on the condensed (DAG) network.
    condensed = condense_network(network)

    # The query region R of the paper's Figure 1: e and h lie inside it.
    region = Rect(3.5, 4.5, 6.0, 7.0)
    a, c = 0, 2  # vertices 'a' and 'c'

    methods = [
        RangeReachOracle(network),         # index-free ground truth
        SpaReach(condensed, "bfl"),        # spatial-first + BFL
        SpaReach(condensed, "interval"),   # spatial-first + interval labels
        GeoReach(condensed),               # prior state of the art
        SocReach(condensed),               # paper: social-first
        ThreeDReach(condensed),            # paper: 3-D points
        ThreeDReachRev(condensed),         # paper: 3-D segments, 1 query
    ]

    print(f"\nRangeReach over region {region.as_tuple()}:")
    for method in methods:
        answer_a = method.query(a, region)
        answer_c = method.query(c, region)
        print(f"  {method.name:18s} a -> R: {answer_a!s:5s}  c -> R: {answer_c}")

    witnesses = RangeReachOracle(network).witnesses(a, region)
    names = [chr(ord("a") + w) for w in witnesses]
    print(f"\nwitnesses for vertex a: {names} (the paper's e and h)")


if __name__ == "__main__":
    main()
