"""Geo-advertising: pick the best location for a campaign.

The paper's second motivating use case: "RangeReach can help determine
the best location to open a shop or how to advertise an event based on
users that have direct or indirect (via friendship relationships)
previous activity in particular parts of a city."

For each candidate area we count how many of a seed audience can
geosocially reach it — i.e. the fraction of seed users for whom
``RangeReach(G, user, area)`` is TRUE — and rank the areas.  3DReach-Rev
shines here: every audience test is a single 3-D slab query.

Run with::

    python examples/geo_advertising.py
"""

import random
import time

from repro import Rect, ThreeDReachRev, condense_network
from repro.datasets import make_network


def main() -> None:
    network = make_network("foursquare", scale=0.001, seed=11)
    condensed = condense_network(network)
    method = ThreeDReachRev(condensed)

    rng = random.Random(1)
    users = [v for v, k in enumerate(network.kinds) if k == "user"]
    audience = rng.sample(users, min(400, len(users)))

    # Candidate areas: five square regions, each 2% of the city's extent.
    space = network.space()
    side = (space.area * 0.02) ** 0.5
    candidates = []
    for i in range(5):
        x = space.xlo + rng.random() * (space.width - side)
        y = space.ylo + rng.random() * (space.height - side)
        candidates.append((f"area {i}", Rect(x, y, x + side, y + side)))

    print(f"scoring {len(candidates)} candidate areas against an audience "
          f"of {len(audience)} users\n")

    scored = []
    start = time.perf_counter()
    for name, region in candidates:
        reach = sum(1 for user in audience if method.query(user, region))
        scored.append((reach, name, region))
    elapsed = time.perf_counter() - start

    scored.sort(reverse=True)
    for reach, name, region in scored:
        share = reach / len(audience)
        bar = "#" * round(share * 40)
        print(f"  {name}: {reach:4d}/{len(audience)} users ({share:6.1%}) {bar}")

    best = scored[0]
    print(f"\nbest location: {best[1]} — reaches {best[0]} of the audience")
    print(f"({len(candidates) * len(audience)} RangeReach queries "
          f"in {elapsed:.2f}s via 3DReach-Rev)")


if __name__ == "__main__":
    main()
