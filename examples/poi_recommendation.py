"""Points-of-Interest recommendation (the paper's first motivating use case).

"Users can query for restaurants in a particular area of the city that
their friends or friends of their friends have visited in the past."

We generate a Gowalla-style geosocial network, pick a user, and check —
with the paper's 3DReach method — which downtown districts contain venues
the user can reach through the social graph.  The BFS oracle then lists
the concrete venues behind each positive answer.

Run with::

    python examples/poi_recommendation.py
"""

import random

from repro import RangeReachOracle, Rect, ThreeDReach, condense_network
from repro.datasets import make_network


def main() -> None:
    network = make_network("gowalla", scale=0.001, seed=7)
    stats = network.stats()
    print(
        f"{network.name}: {stats.num_users} users, {stats.num_venues} venues, "
        f"{stats.num_checkin_edges} check-ins"
    )

    condensed = condense_network(network)
    method = ThreeDReach(condensed)
    oracle = RangeReachOracle(network)

    # Carve the city into a 4x4 grid of districts.
    space = network.space()
    districts = []
    for row in range(4):
        for col in range(4):
            districts.append(
                (
                    f"district ({row},{col})",
                    Rect(
                        space.xlo + col * space.width / 4,
                        space.ylo + row * space.height / 4,
                        space.xlo + (col + 1) * space.width / 4,
                        space.ylo + (row + 1) * space.height / 4,
                    ),
                )
            )

    # Pick a socially active user as the query vertex.
    rng = random.Random(0)
    users = [v for v, k in enumerate(network.kinds) if k == "user"]
    user = max(
        rng.sample(users, min(50, len(users))),
        key=network.graph.out_degree,
    )
    print(
        f"\nrecommending for user {user} "
        f"(out-degree {network.graph.out_degree(user)}):"
    )

    for name, region in districts:
        if method.query(user, region):
            venues = oracle.witnesses(user, region)
            sample = ", ".join(f"venue {v}" for v in venues[:3])
            more = f" (+{len(venues) - 3} more)" if len(venues) > 3 else ""
            print(f"  {name}: {len(venues):4d} reachable venues — {sample}{more}")
        else:
            print(f"  {name}: nothing reachable here")


if __name__ == "__main__":
    main()
