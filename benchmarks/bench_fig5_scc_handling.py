"""Figure 5 — SCC handling: replicate vs MBR variant (SpaReach-INT).

Per-point query benchmarks for both variants at the default region
extent, plus the full printed figure (extent + degree sweeps).  Expected
shape (paper): the non-MBR (replicate) variant always wins — the MBR
R-tree indexes rectangles instead of points and every candidate needs a
member-point verification.
"""

import pytest

from repro.bench import bench_datasets, format_table, time_queries
from repro.bench.experiments import (
    DEFAULT_BUCKET,
    DEFAULT_EXTENT,
    get_workload,
    run_fig5,
)
from repro.bench.harness import bench_num_queries, get_bundle


@pytest.mark.parametrize("variant", ["spareach-int", "spareach-int-mbr"])
@pytest.mark.parametrize("dataset", bench_datasets())
def test_query_default_extent(benchmark, dataset, variant):
    bundle = get_bundle(dataset, ("spareach-int", "spareach-int-mbr"))
    batch = get_workload(dataset).batch_by_extent(
        DEFAULT_EXTENT, DEFAULT_BUCKET, bench_num_queries()
    )
    method = bundle[variant]
    avg, positives = benchmark.pedantic(
        lambda: time_queries(method, batch), rounds=3, iterations=1
    )
    benchmark.extra_info["avg_query_us"] = avg * 1e6
    benchmark.extra_info["positives"] = positives


@pytest.mark.parametrize("dataset", bench_datasets())
def test_variants_agree(dataset):
    bundle = get_bundle(dataset, ("spareach-int", "spareach-int-mbr"))
    batch = get_workload(dataset).batch_by_extent(DEFAULT_EXTENT, DEFAULT_BUCKET, 20)
    for query in batch:
        assert bundle["spareach-int"].query(query.vertex, query.region) == bundle[
            "spareach-int-mbr"
        ].query(query.vertex, query.region)


def test_fig5_report(benchmark, report):
    title, headers, rows = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    assert rows
    report(format_table(headers, rows, title=title))


def test_fig5_svg_artifacts(benchmark, report, results_dir):
    from repro.bench.experiments import chart_series
    from repro.bench.svg_chart import write_svg

    methods = ("spareach-int", "spareach-int-mbr")

    def build():
        written = []
        for dataset in bench_datasets():
            x_labels, series = chart_series(dataset, methods, "extent")
            written.append(
                write_svg(
                    results_dir / f"fig5_{dataset}_extent.svg",
                    f"Figure 5 — {dataset}, replicate vs MBR SCC handling",
                    x_labels,
                    series,
                )
            )
        return written

    written = benchmark.pedantic(build, rounds=1, iterations=1)
    assert all(p.exists() for p in written)
    report(
        "Figure 5 SVG artifacts written:\n"
        + "\n".join(f"  {p}" for p in written)
    )
