"""Shared build pipeline — build-all-methods wall time, with and without
artifact sharing.

Builds the paper's five methods over each dataset twice:

* **independent** — five :func:`repro.core.build_method` calls, each
  paying its own condensation access, labeling and R-tree load (the
  pre-pipeline behavior);
* **shared** — one :func:`repro.core.build_methods` call over a single
  :class:`repro.pipeline.BuildContext`.

Besides the timing entries, the run asserts the pipeline's contract: the
shared build condenses at most once and constructs each labeling at most
once per distinct ``(direction, mode, stride)`` key — checked both on the
context's local stats and on the ``repro_pipeline_*`` obs counters — and
writes a JSON artifact to ``benchmarks/results/build_pipeline.json``.
"""

import json
import time

import pytest

from repro import obs
from repro.bench import bench_datasets, format_table, get_condensed
from repro.core import build_method, build_methods
from repro.pipeline import BuildContext

PAPER_METHODS = (
    "spareach-bfl", "georeach", "socreach", "3dreach", "3dreach-rev",
)


def _build_independent(condensed):
    return {name: build_method(name, condensed) for name in PAPER_METHODS}


def _build_shared(condensed):
    context = BuildContext(condensed)
    methods = build_methods(PAPER_METHODS, context=context)
    return methods, context


@pytest.mark.parametrize("dataset", bench_datasets())
def test_build_independent(benchmark, dataset):
    condensed = get_condensed(dataset)
    methods = benchmark.pedantic(
        lambda: _build_independent(condensed), rounds=1, iterations=1
    )
    assert len(methods) == len(PAPER_METHODS)


@pytest.mark.parametrize("dataset", bench_datasets())
def test_build_shared(benchmark, dataset):
    condensed = get_condensed(dataset)
    methods, context = benchmark.pedantic(
        lambda: _build_shared(condensed), rounds=1, iterations=1
    )
    assert len(methods) == len(PAPER_METHODS)
    stats = context.stats()
    # The pipeline contract: condensation never rebuilt (the context was
    # seeded with one), labelings built once per distinct key.
    assert stats["misses"].get("condense", 0) <= 1
    assert stats["misses"].get("labeling", 0) == len(context.labeling_builds())
    assert context.labeling_builds() == [
        ("forward", "subtree", 1),
        ("reversed", "subtree", 1),
    ]


def test_pipeline_report(report, results_dir):
    rows = []
    artifact = {"methods": list(PAPER_METHODS), "datasets": {}}
    for dataset in bench_datasets():
        condensed = get_condensed(dataset)
        obs.REGISTRY.reset()
        with obs.observability(True):
            started = time.perf_counter()
            _build_independent(condensed)
            independent_s = time.perf_counter() - started

            started = time.perf_counter()
            _, context = _build_shared(condensed)
            shared_s = time.perf_counter() - started
            labeling_misses = obs.REGISTRY.value(
                "repro_pipeline_cache_misses_total", artifact="labeling"
            )
        stats = context.stats()
        # Obs counters aggregate over both runs; the *independent* run
        # creates one single-use context per method, so its misses also
        # land there.  The shared run's own misses come from the context.
        assert stats["misses"].get("labeling", 0) == len(
            context.labeling_builds()
        )
        # Independent: one context per method => labeling built per
        # method needing it (spareach-bfl: 0, georeach: 0, socreach: 1,
        # 3dreach: 1, 3dreach-rev: 1) = 3, plus the shared run's 2.
        assert labeling_misses >= stats["misses"].get("labeling", 0)
        speedup = independent_s / shared_s if shared_s > 0 else float("inf")
        rows.append([
            dataset,
            f"{independent_s:.3f}",
            f"{shared_s:.3f}",
            f"{speedup:.2f}x",
            str(stats["hits"].get("labeling", 0)),
            str(stats["misses"].get("labeling", 0)),
        ])
        artifact["datasets"][dataset] = {
            "independent_seconds": independent_s,
            "shared_seconds": shared_s,
            "speedup": speedup,
            "context_stats": stats,
            "labeling_builds": [
                list(key) for key in context.labeling_builds()
            ],
        }
    report(format_table(
        ["dataset", "independent [s]", "shared [s]", "speedup",
         "label hits", "label misses"],
        rows,
        title="Shared build pipeline: build-all-five-methods wall time",
    ))
    out = results_dir / "build_pipeline.json"
    out.write_text(json.dumps(artifact, indent=2), encoding="utf-8")
    assert out.exists()
