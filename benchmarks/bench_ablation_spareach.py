"""Ablations around SpaReach (not part of the paper's figures).

Three design choices are isolated:

1. **Materialize vs stream** — the paper's SpaReach evaluates the full
   spatial range query before the first GReach test; the streaming
   variant consumes R-tree results lazily.  Streaming flattens the
   extent-degradation the paper attributes to SpaReach, which is exactly
   why the distinction matters when interpreting Figure 7.
2. **Spatial index choice** — R-tree (paper) vs quadtree vs uniform grid
   vs linear scan, holding everything else fixed.
3. **Reachability index choice** — BFL (paper's best) vs interval labels
   vs PLL vs GRAIL.
"""

import pytest

from repro.bench import bench_datasets, format_table, time_queries
from repro.bench.experiments import DEFAULT_BUCKET, get_workload
from repro.bench.harness import bench_num_queries, get_bundle
from repro.bench.tables import us
from repro.workloads import DEFAULT_EXTENTS

_STREAMING = ("spareach-bfl", "spareach-bfl-streaming")
_SPATIAL = (
    "spareach-bfl", "spareach-bfl-quadtree", "spareach-bfl-grid",
    "spareach-bfl-linear",
)
_REACH = (
    "spareach-bfl", "spareach-int", "spareach-pll", "spareach-grail",
    "spareach-feline", "spareach-chain",
)


def _dataset() -> str:
    datasets = bench_datasets()
    return "gowalla" if "gowalla" in datasets else datasets[0]


@pytest.mark.parametrize("variant", _STREAMING)
@pytest.mark.parametrize("extent", DEFAULT_EXTENTS)
def test_streaming_ablation(benchmark, variant, extent):
    dataset = _dataset()
    bundle = get_bundle(dataset, _STREAMING)
    batch = get_workload(dataset).batch_by_extent(
        extent, DEFAULT_BUCKET, bench_num_queries()
    )
    method = bundle[variant]
    avg, _ = benchmark.pedantic(
        lambda: time_queries(method, batch), rounds=3, iterations=1
    )
    benchmark.extra_info["avg_query_us"] = avg * 1e6


@pytest.mark.parametrize("variant", _SPATIAL)
def test_spatial_index_ablation(benchmark, variant):
    dataset = _dataset()
    bundle = get_bundle(dataset, _SPATIAL)
    batch = get_workload(dataset).batch_by_extent(
        5.0, DEFAULT_BUCKET, bench_num_queries()
    )
    method = bundle[variant]
    avg, _ = benchmark.pedantic(
        lambda: time_queries(method, batch), rounds=3, iterations=1
    )
    benchmark.extra_info["avg_query_us"] = avg * 1e6


@pytest.mark.parametrize("variant", _REACH)
def test_reach_index_ablation(benchmark, variant):
    dataset = _dataset()
    bundle = get_bundle(dataset, _REACH)
    batch = get_workload(dataset).batch_by_extent(
        5.0, DEFAULT_BUCKET, bench_num_queries()
    )
    method = bundle[variant]
    avg, _ = benchmark.pedantic(
        lambda: time_queries(method, batch), rounds=3, iterations=1
    )
    benchmark.extra_info["avg_query_us"] = avg * 1e6


def test_all_variants_agree():
    dataset = _dataset()
    names = tuple(dict.fromkeys(_STREAMING + _SPATIAL + _REACH))
    bundle = get_bundle(dataset, names)
    batch = get_workload(dataset).batch_by_extent(5.0, DEFAULT_BUCKET, 20)
    for query in batch:
        answers = {
            name: bundle[name].query(query.vertex, query.region)
            for name in names
        }
        assert len(set(answers.values())) == 1, answers


def test_streaming_report(benchmark, report):
    def sweep():
        dataset = _dataset()
        bundle = get_bundle(dataset, _STREAMING)
        workload = get_workload(dataset)
        rows = []
        for extent in DEFAULT_EXTENTS:
            batch = workload.batch_by_extent(
                extent, DEFAULT_BUCKET, bench_num_queries()
            )
            row = [f"{extent:g}%"]
            for name in _STREAMING:
                avg, _ = time_queries(bundle[name], batch)
                row.append(round(us(avg), 1))
            rows.append(row)
        return dataset, rows

    dataset, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["extent"] + [f"{m} [us]" for m in _STREAMING],
            rows,
            title=(
                "Ablation — materialized vs streaming SpaReach-BFL on "
                f"{dataset} (the paper's variant materializes)"
            ),
        )
    )
