"""Table 4 — index size [MB] per method, MBR SCC variant in parentheses.

Expected shape (paper): SpaReach-BFL 2-3x larger than SpaReach-INT;
GeoReach and SocReach smallest; 3DReach-Rev the largest 3-D index; the
MBR variant adds tens of percent except for 3DReach-Rev (segments and
boxes cost alike).
"""

import pytest

from repro.bench import bench_datasets, format_table
from repro.bench.experiments import run_table4
from repro.bench.harness import get_bundle
from repro.bench.tables import mb


@pytest.mark.parametrize("dataset", bench_datasets())
def test_size_relations_hold(dataset):
    bundle = get_bundle(
        dataset,
        ("spareach-bfl", "spareach-int", "3dreach", "3dreach-rev",
         "3dreach-mbr", "3dreach-rev-mbr"),
    )
    sizes = {name: mb(m.size_bytes()) for name, m in bundle.methods.items()}
    # the space-time tradeoff of Section 6.3
    assert sizes["spareach-bfl"] > sizes["spareach-int"]
    # the reversed labeling compresses poorly -> larger 3-D index
    assert sizes["3dreach-rev"] > sizes["3dreach"]
    # MBR variant never cheaper; identical for the segment-based index
    assert sizes["3dreach-mbr"] >= sizes["3dreach"]
    assert sizes["3dreach-rev-mbr"] == pytest.approx(sizes["3dreach-rev"])


def test_table4_report(benchmark, report):
    title, headers, rows = benchmark.pedantic(
        run_table4, rounds=1, iterations=1
    )
    assert len(rows) == len(bench_datasets())
    report(format_table(headers, rows, title=title))
