"""Open-loop load test of the network query service (``repro serve``).

The scenario: one :class:`~repro.serve.QueryService` over a
:class:`~repro.system.GeosocialDatabase`, driven by the open-loop
generator in :mod:`repro.serve.loadgen` — Poisson arrivals at ramping
request rates, a mixed read/write operation blend, every request fired
at its scheduled instant regardless of server progress.  Latency is
``finished - scheduled`` (coordinated-omission corrected), reported as
p50/p95/p99 per ramp stage and per operation kind.

The run is also a correctness gate, not just a meter:

* after the load drains, every distinct read is replayed sequentially
  and checked against a BFS oracle on the reconstructed final graph —
  **zero mismatches** required while concurrent writes were landing;
* a sample of the load's requests is **reconciled against the server's
  flight recorder** (every op carries a deterministic ``X-Request-Id``):
  the server-side trace must be retrievable from ``/debug/traces?id=``,
  fit inside the client-measured service time, and attribute the
  server wall time to named stages;
* per-batch **tracing overhead** is measured in-process (traced vs
  untraced batched throughput) and reported in the artifact;
* a synchronized burst past ``max_inflight`` must produce 429s
  (admission control demonstrably sheds load instead of queueing);
* the server must drain cleanly at the end.

The artifact ``benchmarks/results/service_load.json`` carries the
config, per-stage rates and latencies, error counts, the verification
verdict and the overload probe.  ``python benchmarks/bench_service_load.py
--smoke`` runs a seconds-scale version and validates the artifact
schema — the CI service-smoke job runs exactly that.

Knobs (environment variables): ``REPRO_SCALE`` (dataset scale),
``REPRO_STAGES`` (e.g. ``"40x2,80x2,160x2"``).
"""

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import format_table  # noqa: E402
from repro.datasets import make_network  # noqa: E402
from repro.exec import ParallelExecutor  # noqa: E402
from repro.geometry import Rect  # noqa: E402
from repro.obs.trace import trace as _trace  # noqa: E402
from repro.serve import QueryService, start_server  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    _random_region,
    build_schedule,
    final_network,
    overload_probe,
    parse_stages,
    reconcile_traces,
    run_schedule,
    summarize,
    verify_reads,
)
from repro.system import GeosocialDatabase  # noqa: E402

DEFAULT_STAGES = "40x2,80x2,160x2"
SMOKE_STAGES = "30x1"


def _env_scale(default: float = 0.002) -> float:
    return float(os.environ.get("REPRO_SCALE", default))


def measure_tracing_overhead(
    database: GeosocialDatabase,
    executor: ParallelExecutor | None,
    network,
    *,
    rounds: int = 12,
    batch_size: int = 64,
    seed: int = 23,
) -> dict:
    """Traced vs untraced batched throughput, interleaved A/B.

    Runs the same ``range_reach_many`` batch alternately bare and under
    a serving-style trace (root span + per-chunk stage spans via the
    executor's cross-thread handoff).  Interleaving the two arms keeps
    cache/frequency drift from biasing either side.  The acceptance
    target from the issue is <= 5% overhead on batched throughput; the
    smoke gate is deliberately looser (see :func:`validate_artifact`)
    because seconds-scale CI runs are noisy.
    """
    rng = random.Random(seed)
    space = network.space()
    pairs = [
        (rng.randrange(network.num_vertices),
         Rect(*_random_region(rng, space)))
        for _ in range(batch_size)
    ]

    def run_once(traced: bool) -> float:
        begin = time.perf_counter()
        if traced:
            with _trace("/batch", counters=False):
                database.range_reach_many(pairs, executor)
        else:
            database.range_reach_many(pairs, executor)
        return time.perf_counter() - begin

    for _ in range(2):  # warm both arms
        run_once(False)
        run_once(True)
    untraced: list[float] = []
    traced: list[float] = []
    for _ in range(rounds):
        untraced.append(run_once(False))
        traced.append(run_once(True))
    untraced.sort()
    traced.sort()
    median_off = untraced[len(untraced) // 2]
    median_on = traced[len(traced) // 2]
    return {
        "rounds": rounds,
        "batch_size": batch_size,
        "untraced_median_s": median_off,
        "traced_median_s": median_on,
        "overhead_fraction": (
            median_on / median_off - 1.0 if median_off > 0 else 0.0
        ),
    }


def run_service_load(
    *,
    dataset: str = "gowalla",
    scale: float = 0.002,
    stages_spec: str = DEFAULT_STAGES,
    seed: int = 17,
    write_fraction: float = 0.2,
    batch_fraction: float = 0.15,
    max_inflight: int = 8,
    workers: int = 2,
) -> dict:
    """Run the full load scenario in-process; return the artifact dict."""
    stages = parse_stages(stages_spec)
    network = make_network(dataset, scale=scale, seed=seed)
    database = GeosocialDatabase.from_network(network)
    executor = ParallelExecutor(workers=workers) if workers > 1 else None
    service = QueryService(
        database, executor=executor, max_inflight=max_inflight
    )
    service.warm_up()
    server = start_server(service)
    base = f"http://127.0.0.1:{server.port}"
    try:
        schedule = build_schedule(
            network, stages, seed=seed,
            write_fraction=write_fraction, batch_fraction=batch_fraction,
        )
        started = time.perf_counter()
        outcomes = run_schedule(base, schedule)
        elapsed = time.perf_counter() - started
        load = summarize(schedule, outcomes)
        # Reconcile before verify_reads: the oracle replay would wash
        # the load's traces out of the recorder's bounded recent ring.
        reconciliation = reconcile_traces(base, outcomes)
        verification = verify_reads(
            base, final_network(network, outcomes), schedule.read_pairs
        )
        overload = overload_probe(base, max_inflight, network=network)
        overhead = measure_tracing_overhead(database, executor, network)
    finally:
        drain = server.drain(persist=False)
    return {
        "config": {
            "dataset": dataset,
            "scale": scale,
            "seed": seed,
            "stages": [
                {"rps": s.rps, "seconds": s.seconds} for s in stages
            ],
            "write_fraction": write_fraction,
            "batch_fraction": batch_fraction,
            "max_inflight": max_inflight,
            "workers": workers,
            "vertices": network.num_vertices,
            "edges": network.num_edges,
        },
        "load": load,
        "tracing": {
            "reconciliation": reconciliation,
            "overhead": overhead,
            "overhead_target_fraction": 0.05,
        },
        "verification": verification,
        "overload": overload,
        "drain": drain,
        "elapsed_seconds": elapsed,
    }


def validate_artifact(artifact: dict) -> None:
    """Assert the ``service_load.json`` schema and the acceptance gates."""
    for key in (
        "config", "load", "tracing", "verification", "overload", "drain",
        "elapsed_seconds",
    ):
        assert key in artifact, f"artifact missing {key!r}"
    config = artifact["config"]
    assert config["stages"] and all(
        stage["rps"] > 0 and stage["seconds"] > 0
        for stage in config["stages"]
    )
    load = artifact["load"]
    assert load["requests"] > 0
    latency = load["latency"]
    for field in ("count", "p50_ms", "p95_ms", "p99_ms", "max_ms"):
        assert isinstance(latency[field], (int, float)), field
    assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
    assert set(load["latency_by_kind"]) == {"query", "batch", "write"}
    assert len(load["stages"]) == len(config["stages"])
    for stage in load["stages"]:
        assert stage["requests"] == (
            stage["ok"] + stage["rejected"] + stage["errors"]
        )
    tracing = artifact["tracing"]
    recon = tracing["reconciliation"]
    for field in (
        "sampled", "missing", "server_within_client",
        "attributed_fraction_min", "attributed_fraction_mean",
        "transport_gap_ms_max", "samples",
    ):
        assert field in recon, f"reconciliation missing {field!r}"
    assert recon["sampled"] > 0, "no load traces reconciled"
    assert recon["missing"] == 0, (
        "loadgen request ids not found in the flight recorder"
    )
    assert recon["server_within_client"] == recon["sampled"], (
        "server trace duration exceeded client-measured service time"
    )
    for row in recon["samples"]:
        for field in (
            "request_id", "kind", "client_service_ms", "server_trace_ms",
            "transport_gap_ms", "attributed_fraction",
        ):
            assert field in row, f"reconciliation sample missing {field!r}"
    batch_rows = [r for r in recon["samples"] if r["kind"] == "batch"]
    assert batch_rows, "no /batch request was reconciled against a trace"
    # The headline attribution criterion: a /batch trace under load
    # attributes >= 95% of server wall time to named stages.
    assert max(r["attributed_fraction"] for r in batch_rows) >= 0.95, (
        "no /batch trace attributed >= 95% of wall time to stages"
    )
    assert recon["attributed_fraction_mean"] >= 0.80
    overhead = tracing["overhead"]
    assert overhead["untraced_median_s"] > 0
    # Report the 5% target; gate loosely — seconds-scale CI medians
    # on shared runners are too noisy for a tight perf assertion.
    assert overhead["overhead_fraction"] <= 0.5, (
        f"tracing overhead {overhead['overhead_fraction']:.1%} "
        "is far beyond the 5% target"
    )
    # The acceptance gates.
    assert artifact["verification"]["queries"] > 0
    assert artifact["verification"]["mismatches"] == 0, (
        "served answers diverged from the BFS oracle"
    )
    assert artifact["overload"]["rejected"] > 0, (
        "overload burst produced no 429s"
    )
    assert artifact["drain"]["inflight_at_drain"] == 0


def _stage_rows(artifact: dict) -> list[list[str]]:
    return [
        [
            f"{stage['rps']:g}",
            f"{stage['seconds']:g}",
            str(stage["requests"]),
            str(stage["ok"]),
            str(stage["rejected"]),
            str(stage["errors"]),
            f"{stage['p99_ms']:.1f}",
        ]
        for stage in artifact["load"]["stages"]
    ]


def _render(artifact: dict) -> str:
    latency = artifact["load"]["latency"]
    table = format_table(
        ["rps", "secs", "requests", "ok", "429/503", "errors", "p99 [ms]"],
        _stage_rows(artifact),
        title="Open-loop service load "
        f"(mixed read/write, {artifact['config']['dataset']} "
        f"scale={artifact['config']['scale']:g})",
    )
    verdict = artifact["verification"]
    overload = artifact["overload"]
    recon = artifact["tracing"]["reconciliation"]
    overhead = artifact["tracing"]["overhead"]
    return (
        f"{table}\n"
        f"latency: p50={latency['p50_ms']:.1f}ms "
        f"p95={latency['p95_ms']:.1f}ms p99={latency['p99_ms']:.1f}ms "
        f"({latency['count']} ok requests)\n"
        f"tracing: {recon['sampled']} traces reconciled "
        f"({recon['missing']} missing), stage attribution "
        f"min={recon['attributed_fraction_min']:.1%} "
        f"mean={recon['attributed_fraction_mean']:.1%}, "
        f"overhead={overhead['overhead_fraction']:+.1%} "
        f"(target <= {artifact['tracing']['overhead_target_fraction']:.0%})\n"
        f"verification: {verdict['queries']} reads vs oracle, "
        f"{verdict['mismatches']} mismatches\n"
        f"overload: {overload['rejected']}/{overload['attempted']} "
        "burst requests shed with 429"
    )


def test_service_load_report(report, results_dir):
    artifact = run_service_load(
        scale=_env_scale(),
        stages_spec=os.environ.get("REPRO_STAGES", DEFAULT_STAGES),
    )
    validate_artifact(artifact)
    report(_render(artifact))
    out = results_dir / "service_load.json"
    out.write_text(json.dumps(artifact, indent=2), encoding="utf-8")
    assert out.exists()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Open-loop load test of the repro query service."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run that validates the artifact schema",
    )
    parser.add_argument("--dataset", default="gowalla")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument(
        "--stages", default=None, metavar="SPEC",
        help=f"RPSxSECONDS[,RPSxSECONDS...] (default: {DEFAULT_STAGES})",
    )
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--max-inflight", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--out", default=str(Path(__file__).parent / "results"
                             / "service_load.json"),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        scale = args.scale if args.scale is not None else 0.0005
        stages_spec = args.stages or SMOKE_STAGES
    else:
        scale = args.scale if args.scale is not None else _env_scale()
        stages_spec = args.stages or os.environ.get(
            "REPRO_STAGES", DEFAULT_STAGES
        )
    artifact = run_service_load(
        dataset=args.dataset, scale=scale, stages_spec=stages_spec,
        seed=args.seed, max_inflight=args.max_inflight,
        workers=args.workers,
    )
    validate_artifact(artifact)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(artifact, indent=2), encoding="utf-8")
    print(_render(artifact))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
