"""Microbenchmarks of the vectorized kernels vs their python twins.

Three single-thread microkernels over one frozen workload, each timed
against the pure-python oracle twin on identical probe sequences:

* **slab** — SocReach's descendant scan: ``any_in_flat`` over the flat
  coordinate ranges covered by each query source's interval labels.
* **cuboid** — the 3DReach containment sweep: ``any_in_zrange`` per
  interval label (cuboid ``region x [lo, hi]``), the same slot
  arithmetic SocReach uses.
* **bfl** — SpaReach's candidate loop: ``reaches_many`` over whole
  candidate batches (vectorized interval + Bloom-filter tests with the
  scalar DFS fallback for survivors).

Every probe is answered by both backends and compared — a single
disagreement fails the run (the parity gate is always enforced).  The
full run additionally gates **>= 5x** python-over-numpy speedup on the
slab and cuboid microkernels; the bfl speedup is reported, not gated
(its cost is dominated by the DFS fallback rate of the workload).
``--smoke`` runs a seconds-scale version keeping only parity + schema.

The artifact ``benchmarks/results/kernels.json`` carries config,
per-kernel timings, speedups, and gate verdicts.
"""

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import format_table  # noqa: E402
from repro.datasets import make_network  # noqa: E402
from repro.geometry import Rect  # noqa: E402
from repro.geosocial import condense_network  # noqa: E402
from repro.kernels import numpy_available  # noqa: E402
from repro.pipeline import BuildContext  # noqa: E402

ARTIFACT_VERSION = 1
GATE_SPEEDUP = 5.0


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def build_queries(
    network, condensed, labeling, count: int, seed: int
) -> list[tuple[int, Rect]]:
    """Frozen ``(vertex, region)`` pairs; regions are small (1-10% of
    SPACE per side), so most containment probes are misses — the
    worst case for the scalar scan and the common case in the paper's
    workloads.  Sources are the heaviest quartile (by descendant count)
    of a 4x oversample: the microkernel exists for the queries whose
    descendant scans dominate, so that is what it is timed on.
    """
    rng = random.Random(seed)
    space = network.space()
    width = space.xhi - space.xlo
    height = space.yhi - space.ylo
    sampled = [rng.randrange(network.num_vertices) for _ in range(4 * count)]
    sampled.sort(
        key=lambda v: labeling.num_descendants(condensed.super_of(v)),
        reverse=True,
    )
    pairs: list[tuple[int, Rect]] = []
    for vertex in sampled[:count]:
        side_x = width * rng.uniform(0.01, 0.1)
        side_y = height * rng.uniform(0.01, 0.1)
        xlo = space.xlo + rng.random() * (width - side_x)
        ylo = space.ylo + rng.random() * (height - side_y)
        pairs.append((vertex, Rect(xlo, ylo, xlo + side_x, ylo + side_y)))
    return pairs


def _time_probes(fn, probes, rounds: int) -> float:
    fn(*probes[0])  # warm caches outside the window
    started = time.perf_counter()
    for _ in range(rounds):
        for probe in probes:
            fn(*probe)
    return time.perf_counter() - started


def _speedup(python_seconds: float, numpy_seconds: float) -> float:
    return python_seconds / numpy_seconds if numpy_seconds > 0 else 0.0


# ----------------------------------------------------------------------
# Microkernels
# ----------------------------------------------------------------------
def run_slab(context, condensed, queries, rounds: int) -> dict:
    """``any_in_flat`` over each source's coalesced label flat ranges."""
    py = context.slab_kernel(backend="python")
    np_ = context.slab_kernel(backend="numpy")
    labeling = context.labeling()
    offsets = context.post_slabs().offsets
    probes = []
    for vertex, region in queries:
        source = condensed.super_of(vertex)
        for lo, hi in labeling.labels_of(source):
            start, end = py.slot_range(lo, hi)
            if end < start:
                continue
            probes.append((region, offsets[start - 1], offsets[end]))
    mismatches = sum(
        1
        for probe in probes
        if py.any_in_flat(*probe) != np_.any_in_flat(*probe)
    )
    python_seconds = _time_probes(py.any_in_flat, probes, rounds)
    numpy_seconds = _time_probes(np_.any_in_flat, probes, rounds)
    return {
        "probes": len(probes),
        "rounds": rounds,
        "points_scanned": sum(b - a for _, a, b in probes),
        "mismatches": mismatches,
        "python_seconds": python_seconds,
        "numpy_seconds": numpy_seconds,
        "speedup": _speedup(python_seconds, numpy_seconds),
    }


def run_cuboid(context, condensed, queries, rounds: int) -> dict:
    """``any_in_zrange`` per interval label — the 3DReach cuboid sweep."""
    py = context.slab_kernel(backend="python")
    np_ = context.slab_kernel(backend="numpy")
    labeling = context.labeling()
    probes = []
    for vertex, region in queries:
        source = condensed.super_of(vertex)
        for lo, hi in labeling.labels_of(source):
            probes.append((region, lo, hi))
    mismatches = sum(
        1
        for probe in probes
        if py.any_in_zrange(*probe) != np_.any_in_zrange(*probe)
    )
    python_seconds = _time_probes(py.any_in_zrange, probes, rounds)
    numpy_seconds = _time_probes(np_.any_in_zrange, probes, rounds)
    return {
        "probes": len(probes),
        "rounds": rounds,
        "mismatches": mismatches,
        "python_seconds": python_seconds,
        "numpy_seconds": numpy_seconds,
        "speedup": _speedup(python_seconds, numpy_seconds),
    }


def run_bfl(context, condensed, queries, rounds: int, seed: int) -> dict:
    """``reaches_many`` over whole candidate batches (reported only)."""
    rng = random.Random(seed)
    py = context.bfl_kernel(backend="python")
    np_ = context.bfl_kernel(backend="numpy")
    n = condensed.num_components
    spatial = list(condensed.spatial_components()) or list(range(n))
    probes = []
    for vertex, _ in queries[: max(1, len(queries) // 4)]:
        source = condensed.super_of(vertex)
        batch = [rng.choice(spatial) for _ in range(min(64, len(spatial)))]
        probes.append((source, batch))
    mismatches = sum(
        1
        for probe in probes
        if py.reaches_many(*probe) != np_.reaches_many(*probe)
    )
    python_seconds = _time_probes(py.reaches_many, probes, rounds)
    numpy_seconds = _time_probes(np_.reaches_many, probes, rounds)
    return {
        "probes": len(probes),
        "rounds": rounds,
        "batch_size": len(probes[0][1]) if probes else 0,
        "mismatches": mismatches,
        "python_seconds": python_seconds,
        "numpy_seconds": numpy_seconds,
        "speedup": _speedup(python_seconds, numpy_seconds),
    }


# ----------------------------------------------------------------------
# Artifact
# ----------------------------------------------------------------------
def validate_artifact(artifact: dict) -> list[str]:
    """Schema check the CI smoke gate runs; returns problem strings."""
    problems: list[str] = []

    def need(mapping, key, kinds, where):
        if not isinstance(mapping, dict) or key not in mapping:
            problems.append(f"{where}: missing {key!r}")
            return None
        value = mapping[key]
        if not isinstance(value, kinds) or isinstance(value, bool):
            problems.append(f"{where}: {key!r} has type {type(value).__name__}")
            return None
        return value

    need(artifact, "version", int, "artifact")
    need(artifact, "config", dict, "artifact")
    kernels = need(artifact, "kernels", dict, "artifact")
    for name in ("slab", "cuboid", "bfl"):
        block = need(kernels or {}, name, dict, "kernels")
        if block is None:
            continue
        need(block, "probes", int, f"kernels.{name}")
        need(block, "mismatches", int, f"kernels.{name}")
        need(block, "python_seconds", (int, float), f"kernels.{name}")
        need(block, "numpy_seconds", (int, float), f"kernels.{name}")
        need(block, "speedup", (int, float), f"kernels.{name}")
    need(artifact, "gates", dict, "artifact")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run: parity + schema gates only "
        "(speedup gates skipped)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (default 0.02; smoke 0.002)")
    parser.add_argument("--queries", type=int, default=None,
                        help="frozen workload size (default 200; smoke 40)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing rounds (default 5; smoke 1)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "results" / "kernels.json"),
    )
    args = parser.parse_args(argv)

    if not numpy_available():
        print("error: numpy is not importable; nothing to benchmark",
              file=sys.stderr)
        return 1

    scale = args.scale if args.scale is not None else (
        0.002 if args.smoke else 0.02
    )
    queries = args.queries if args.queries is not None else (
        40 if args.smoke else 200
    )
    rounds = args.rounds if args.rounds is not None else (
        1 if args.smoke else 5
    )

    network = make_network("gowalla", scale=scale, seed=args.seed)
    condensed = condense_network(network)
    context = BuildContext(condensed)
    workload = build_queries(
        network, condensed, context.labeling(), queries, args.seed + 1
    )
    print(
        f"network: {network.num_vertices} vertices, "
        f"{network.num_edges} edges, {network.num_spatial} venues; "
        f"workload: {len(workload)} queries"
    )

    kernels = {
        "slab": run_slab(context, condensed, workload, rounds),
        "cuboid": run_cuboid(context, condensed, workload, rounds),
        "bfl": run_bfl(context, condensed, workload, rounds, args.seed + 2),
    }

    total_mismatches = sum(k["mismatches"] for k in kernels.values())
    gates = {
        "parity": {
            "mismatches": total_mismatches,
            "ok": total_mismatches == 0,
        },
    }
    for name in ("slab", "cuboid"):
        gates[name] = {
            "speedup": kernels[name]["speedup"],
            "threshold": GATE_SPEEDUP,
            "ok": kernels[name]["speedup"] >= GATE_SPEEDUP,
            "enforced": not args.smoke,
        }

    artifact = {
        "version": ARTIFACT_VERSION,
        "benchmark": "kernels",
        "smoke": args.smoke,
        "config": {
            "profile": "gowalla",
            "scale": scale,
            "seed": args.seed,
            "queries": queries,
            "rounds": rounds,
            "vertices": network.num_vertices,
            "edges": network.num_edges,
            "venues": network.num_spatial,
        },
        "kernels": kernels,
        "gates": gates,
    }

    print(format_table(
        ["kernel", "probes", "mismatches", "python s", "numpy s", "speedup"],
        [
            [
                name,
                block["probes"],
                block["mismatches"],
                f"{block['python_seconds']:.3f}",
                f"{block['numpy_seconds']:.3f}",
                f"{block['speedup']:.1f}x",
            ]
            for name, block in kernels.items()
        ],
        title="kernel microbenchmarks (single thread)",
    ))

    problems = validate_artifact(artifact)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(artifact, indent=2, sort_keys=True))
    print(f"artifact: {out}")

    failures: list[str] = list(problems)
    if total_mismatches:
        failures.append(f"parity gate: {total_mismatches} mismatches")
    if not args.smoke:
        for name in ("slab", "cuboid"):
            if kernels[name]["speedup"] < GATE_SPEEDUP:
                failures.append(
                    f"{name} gate: speedup {kernels[name]['speedup']:.1f}x "
                    f"< {GATE_SPEEDUP:.0f}x"
                )
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if not failures:
        print("all gates passed" if not args.smoke
              else "smoke gates passed (speedup gates skipped)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
