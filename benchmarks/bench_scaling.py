"""Scaling behaviour: build and query cost vs dataset size.

The paper's absolute numbers live at million-vertex scale; this sweep
shows how each method's build time and query time move as the synthetic
replicas grow, exposing GeoReach's superlinear SPA-graph construction —
the trend behind its extreme Table 5 numbers at full scale.
"""

import pytest

from repro.bench import format_table, time_queries
from repro.bench.experiments import DEFAULT_BUCKET, DEFAULT_EXTENT
from repro.bench.harness import _METHOD_FACTORIES, build_timed
from repro.datasets import make_network
from repro.geosocial import condense_network
from repro.workloads import QueryWorkload

_SCALES = (0.0005, 0.001, 0.002)
_METHODS = ("spareach-bfl", "georeach", "socreach", "3dreach", "3dreach-rev")
_DATASET = "gowalla"

_CACHE: dict[float, tuple] = {}


def _setup(scale: float):
    if scale not in _CACHE:
        network = make_network(_DATASET, scale=scale, seed=1)
        condensed = condense_network(network)
        workload = QueryWorkload(network, seed=2)
        _CACHE[scale] = (condensed, workload)
    return _CACHE[scale]


@pytest.mark.parametrize("scale", _SCALES)
@pytest.mark.parametrize("method_name", _METHODS)
def test_build_scaling(benchmark, method_name, scale):
    condensed, _ = _setup(scale)
    factory = _METHOD_FACTORIES[method_name]
    method = benchmark.pedantic(
        lambda: factory(condensed), rounds=1, iterations=1
    )
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["size_bytes"] = method.size_bytes()


def test_scaling_report(benchmark, report):
    def sweep():
        rows = []
        for scale in _SCALES:
            condensed, workload = _setup(scale)
            batch = workload.batch_by_extent(DEFAULT_EXTENT, DEFAULT_BUCKET, 30)
            row = [f"{scale:g}", condensed.network.num_vertices]
            for name in _METHODS:
                method, build_s = build_timed(
                    lambda n=name: _METHOD_FACTORIES[n](condensed)
                )
                avg, _ = time_queries(method, batch)
                row.append(f"{build_s:.2f}s/{avg * 1e6:.0f}us")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["scale", "|V|"] + [f"{m} build/query" for m in _METHODS],
            rows,
            title=f"Scaling sweep on {_DATASET} (build seconds / query us)",
        )
    )
