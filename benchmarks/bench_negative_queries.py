"""Positive vs negative RangeReach answers (the paper's recurring theme).

Section 2.2.3: "both methods [SpaReach, GeoReach] may perform poorly for
RangeReach queries with a negative answer.  In this case, SpaReach needs
to evaluate all possible graph reachability queries ... while GeoReach
may need to traverse a large part of the SPA-graph."  This bench times
the same batches split by answer class to expose exactly that asymmetry;
the 3DReach methods should show the smallest positive/negative gap.
"""

import pytest

from repro.bench import bench_datasets, format_table
from repro.bench.experiments import DEFAULT_BUCKET, get_workload
from repro.bench.harness import (
    PAPER_METHODS,
    bench_num_queries,
    get_bundle,
    time_queries_split,
)
from repro.bench.tables import us

# A small extent keeps a healthy share of negative answers in the batch.
_EXTENT = 1.0


def _dataset() -> str:
    datasets = bench_datasets()
    return "gowalla" if "gowalla" in datasets else datasets[0]


@pytest.mark.parametrize("method_name", PAPER_METHODS)
def test_split_timing(benchmark, method_name):
    dataset = _dataset()
    bundle = get_bundle(dataset, PAPER_METHODS)
    batch = get_workload(dataset).batch_by_extent(
        _EXTENT, DEFAULT_BUCKET, bench_num_queries()
    )
    method = bundle[method_name]
    split = benchmark.pedantic(
        lambda: time_queries_split(method, batch), rounds=3, iterations=1
    )
    if split.positive_avg is not None:
        benchmark.extra_info["positive_us"] = split.positive_avg * 1e6
    if split.negative_avg is not None:
        benchmark.extra_info["negative_us"] = split.negative_avg * 1e6


def test_negative_split_report(benchmark, report):
    def sweep():
        dataset = _dataset()
        bundle = get_bundle(dataset, PAPER_METHODS)
        batch = get_workload(dataset).batch_by_extent(
            _EXTENT, DEFAULT_BUCKET, bench_num_queries()
        )
        rows = []
        for name in PAPER_METHODS:
            split = time_queries_split(bundle[name], batch)
            rows.append([
                name,
                round(us(split.positive_avg), 1) if split.positive_avg else "-",
                round(us(split.negative_avg), 1) if split.negative_avg else "-",
                f"{split.positives}/{split.positives + split.negatives}",
            ])
        return dataset, rows

    dataset, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["method", "positive [us]", "negative [us]", "positives"],
            rows,
            title=(
                f"Positive vs negative answers on {dataset} "
                f"({_EXTENT:g}% extent) — Section 2.2.3's asymmetry"
            ),
        )
    )
