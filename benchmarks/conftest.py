"""Shared fixtures for the benchmark suite.

Every ``bench_*`` module regenerates one table or figure of the paper.
The paper-style output is printed straight to the terminal (bypassing
pytest's capture) and appended to ``benchmarks/results/report.txt`` so a
plain ``pytest benchmarks/ --benchmark-only`` leaves a reviewable
artifact.

Knobs (environment variables):
    REPRO_SCALE     dataset scale relative to the paper (default 0.002)
    REPRO_QUERIES   queries per configuration (default 50; paper: 1000)
    REPRO_DATASETS  comma-separated dataset subset
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(capsys, results_dir):
    """Print a paper-style table to the real terminal and archive it."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
        with open(results_dir / "report.txt", "a", encoding="utf-8") as fh:
            fh.write(text + "\n\n")

    return emit
