"""Warm-start serving — cold startup vs. snapshot load, with identical answers.

The snapshot store's reason to exist: a process that has a persisted
snapshot must reach serving state much faster than one that starts cold,
and must answer *exactly* the same queries.  The two startup paths match
what :class:`~repro.system.GeosocialDatabase` does with ``snapshot_dir``
configured:

* **cold startup** — acquire the dataset (:func:`make_network`), build
  the paper's five methods through one fresh
  :class:`~repro.pipeline.BuildContext` (condensation, labelings,
  R-trees, SPA-graph, BFL filters from scratch), and persist the
  snapshot for the next start;
* **warm startup** — load that snapshot with :meth:`BuildContext.load`
  and assemble the same five methods from the seeded artifacts.

For each dataset this run measures both paths as the minimum over
``REPEATS`` attempts (the usual noise-robust estimator on shared CI
hardware, where scheduler stalls only ever inflate a timing).  Each
attempt starts after a short idle pause so a cgroup CPU quota drained
by the previous attempt refills first — the scenario being modelled is
a process starting on an otherwise idle machine, not one racing the
tail of an earlier build's throttle window.  The run then asserts
the warm context constructed **nothing** (zero cache misses, zero
labeling builds) and that every method answers a query workload
identically to its cold twin, then reports per-dataset wall-clock and
the speedup and writes ``benchmarks/results/warm_start.json``.

The ≥5x speedup target is asserted on the **medium-profile aggregate**
(total cold startup over total warm startup across the dataset suite) —
per-dataset ratios are reported but not gated, because single datasets
at this scale finish in tens of milliseconds where a single scheduler
stall swings the ratio.  Tiny CI-smoke runs (``REPRO_SCALE`` < 0.002)
only check correctness.
"""

import json
import time

import pytest

from repro.bench import bench_datasets, bench_num_queries, bench_scale, \
    format_table, get_network
from repro.core import build_methods
from repro.datasets import make_network
from repro.pipeline import BuildContext
from repro.workloads import QueryWorkload

PAPER_METHODS = (
    "spareach-bfl", "georeach", "socreach", "3dreach", "3dreach-rev",
)

#: Minimum aggregate cold/warm ratio demanded on the medium profile.
MIN_SPEEDUP = 5.0

#: Timing attempts per startup path; the minimum is reported.
REPEATS = 3

#: Idle pause before each timed attempt (lets CPU quotas refill).
SETTLE_SECONDS = 0.15


def _cold_startup(dataset, snapshot_dir, repeats=REPEATS):
    """Best observed cold startup: acquire + build five methods + persist."""
    best = float("inf")
    methods = summary = None
    for _ in range(repeats):
        time.sleep(SETTLE_SECONDS)
        started = time.perf_counter()
        network = make_network(dataset, scale=bench_scale(), seed=1)
        context = BuildContext(network)
        methods = build_methods(PAPER_METHODS, network, context=context)
        summary = context.save(snapshot_dir)
        best = min(best, time.perf_counter() - started)
    return methods, summary, best


def _warm_startup(snapshot_dir, repeats=REPEATS):
    """Best observed warm startup: load snapshot + assemble five methods."""
    best = float("inf")
    methods = context = None
    for _ in range(repeats):
        time.sleep(SETTLE_SECONDS)
        started = time.perf_counter()
        context = BuildContext.load(snapshot_dir)
        methods = build_methods(PAPER_METHODS, context=context)
        best = min(best, time.perf_counter() - started)
    return methods, context, best


def _workload(network):
    queries = QueryWorkload(network, seed=5).batch_by_extent(
        5.0, (1, 10**9), bench_num_queries()
    )
    return [(q.vertex, q.region) for q in queries]


@pytest.mark.parametrize("dataset", bench_datasets())
def test_warm_start_identical_answers(dataset, tmp_path):
    network = get_network(dataset)
    cold, _, _ = _cold_startup(dataset, tmp_path / "snap", repeats=1)
    warm, warm_context, _ = _warm_startup(tmp_path / "snap", repeats=1)
    # The zero-constructions contract: a warm start builds nothing.
    assert warm_context.miss_keys() == []
    assert warm_context.labeling_builds() == []
    for vertex, region in _workload(network):
        for name in PAPER_METHODS:
            assert warm[name].query(vertex, region) == cold[name].query(
                vertex, region
            ), f"{name} diverged on ({vertex}, {region.as_tuple()})"


def test_warm_start_report(report, results_dir, tmp_path):
    rows = []
    artifact = {
        "methods": list(PAPER_METHODS),
        "scale": bench_scale(),
        "min_speedup": MIN_SPEEDUP,
        "repeats": REPEATS,
        "datasets": {},
    }
    cold_total = 0.0
    warm_total = 0.0
    for dataset in bench_datasets():
        network = get_network(dataset)
        snap = tmp_path / dataset
        cold, summary, cold_seconds = _cold_startup(dataset, snap)
        warm, warm_context, warm_seconds = _warm_startup(snap)
        assert warm_context.miss_keys() == []
        assert warm_context.labeling_builds() == []
        mismatches = 0
        workload = _workload(network)
        for vertex, region in workload:
            for name in PAPER_METHODS:
                if warm[name].query(vertex, region) != cold[name].query(
                    vertex, region
                ):
                    mismatches += 1
        assert mismatches == 0
        cold_total += cold_seconds
        warm_total += warm_seconds
        speedup = (
            cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
        )
        rows.append([
            dataset,
            f"{cold_seconds * 1e3:.1f}",
            f"{warm_seconds * 1e3:.1f}",
            f"{speedup:.1f}x",
            str(summary["parts"]),
            f"{summary['bytes'] / 1024:.0f}",
        ])
        artifact["datasets"][dataset] = {
            "cold_startup_seconds": cold_seconds,
            "warm_startup_seconds": warm_seconds,
            "speedup": speedup,
            "snapshot_parts": summary["parts"],
            "snapshot_bytes": summary["bytes"],
            "queries_checked": len(workload) * len(PAPER_METHODS),
            "mismatches": mismatches,
        }
    aggregate = cold_total / warm_total if warm_total > 0 else float("inf")
    artifact["aggregate"] = {
        "cold_startup_seconds": cold_total,
        "warm_startup_seconds": warm_total,
        "speedup": aggregate,
    }
    rows.append([
        "TOTAL",
        f"{cold_total * 1e3:.1f}",
        f"{warm_total * 1e3:.1f}",
        f"{aggregate:.1f}x",
        "",
        "",
    ])
    report(format_table(
        ["dataset", "cold start [ms]", "warm start [ms]", "speedup",
         "parts", "size [KiB]"],
        rows,
        title="Warm start: cold startup (acquire+build+persist) vs. "
        "snapshot load",
    ))
    out = results_dir / "warm_start.json"
    out.write_text(json.dumps(artifact, indent=2), encoding="utf-8")
    assert out.exists()
    # Ratio assertion only where builds are big enough to measure.
    if bench_scale() >= 0.002:
        assert aggregate >= MIN_SPEEDUP, (
            f"warm start only {aggregate:.1f}x faster than cold startup "
            f"across the suite (need >= {MIN_SPEEDUP}x)"
        )
