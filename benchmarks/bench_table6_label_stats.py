"""Table 6 — interval-labeling label counts.

Benchmarks the labeling construction per dataset and prints the label
statistics.  Expected shape (paper): compression removes ~36% of the
forward labels but yields no significant benefit for the reversed scheme
(which is why 3DReach-Rev costs more to build and store).
"""

import pytest

from repro.bench import bench_datasets, format_table, get_condensed
from repro.bench.experiments import run_table6
from repro.labeling import build_labeling, build_reversed_labeling


@pytest.mark.parametrize("dataset", bench_datasets())
def test_build_forward_labeling(benchmark, dataset):
    dag = get_condensed(dataset).dag
    labeling = benchmark(build_labeling, dag)
    stats = labeling.stats()
    assert stats.compressed_labels <= stats.uncompressed_labels


@pytest.mark.parametrize("dataset", bench_datasets())
def test_build_reversed_labeling(benchmark, dataset):
    dag = get_condensed(dataset).dag
    labeling = benchmark(build_reversed_labeling, dag)
    assert labeling.num_vertices == dag.num_vertices


@pytest.mark.parametrize("dataset", bench_datasets())
def test_forward_compresses_better_than_reversed(dataset):
    dag = get_condensed(dataset).dag
    fwd = build_labeling(dag).stats()
    rev = build_reversed_labeling(dag).stats()
    assert fwd.compression_ratio >= rev.compression_ratio


def test_table6_report(benchmark, report):
    title, headers, rows = benchmark.pedantic(
        run_table6, rounds=1, iterations=1
    )
    assert len(rows) == len(bench_datasets())
    report(format_table(headers, rows, title=title))
