"""Table 5 — indexing time [s] per method.

Each (dataset, method) build is a proper pytest-benchmark entry, plus the
printed Table 5 replica.  Expected shape (paper): GeoReach by far the
slowest to build; the interval-labeling-based methods comparable to
SpaReach-BFL; 3DReach-Rev slower than 3DReach (reversed labels barely
compress, so more segments are loaded into the 3-D R-tree).
"""

import pytest

from repro.bench import bench_datasets, format_table, get_condensed
from repro.bench.experiments import run_table5
from repro.bench.harness import _METHOD_FACTORIES

_BUILD_METHODS = (
    "spareach-bfl", "spareach-int", "georeach", "socreach",
    "3dreach", "3dreach-rev",
)


@pytest.mark.parametrize("method_name", _BUILD_METHODS)
@pytest.mark.parametrize("dataset", bench_datasets())
def test_build(benchmark, dataset, method_name):
    condensed = get_condensed(dataset)
    factory = _METHOD_FACTORIES[method_name]
    method = benchmark.pedantic(
        lambda: factory(condensed), rounds=1, iterations=1
    )
    benchmark.extra_info["size_bytes"] = method.size_bytes()
    assert method.size_bytes() >= 0


def test_table5_report(benchmark, report):
    title, headers, rows = benchmark.pedantic(
        run_table5, rounds=1, iterations=1
    )
    assert len(rows) == len(bench_datasets())
    report(format_table(headers, rows, title=title))
