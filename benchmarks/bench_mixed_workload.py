"""Mixed read/write serving: rebuild-per-write vs delta overlay.

The paper's experiments are read-only; this benchmark measures the
dynamic extension.  Both policies replay the *same* seeded interleaved
update/query stream through :class:`repro.system.GeosocialDatabase`:

* ``rebuild`` — ``refresh_threshold=0``: every write invalidates the
  snapshot, the next query pays a full label + R-tree rebuild;
* ``overlay`` — writes land in the delta log, queries run base ∪ delta,
  and the snapshot is only rebuilt when the log exceeds the threshold
  (or a snapshot edge is removed).

The two answer streams are asserted identical before any timing is
reported — the overlay is only interesting because it is *exact*.
"""

import time

import pytest

from repro.bench import format_table
from repro.system import GeosocialDatabase
from repro.workloads import MixedWorkload, replay_ops

BOOTSTRAP = dict(num_users=250, num_venues=250, num_follows=700, num_checkins=700)
NUM_MIXED_OPS = 300
WRITE_FRACTION = 0.3
SEED = 11


def _streams():
    workload = MixedWorkload(
        seed=SEED, write_fraction=WRITE_FRACTION, removal_fraction=0.05
    )
    bootstrap = workload.bootstrap(**BOOTSTRAP)
    mixed = workload.ops(NUM_MIXED_OPS)
    return bootstrap, mixed


def _fresh_database(policy: str) -> GeosocialDatabase:
    if policy == "rebuild":
        return GeosocialDatabase(refresh_threshold=0)
    return GeosocialDatabase(refresh_threshold=64)


def _replay(policy: str, bootstrap, mixed):
    database = _fresh_database(policy)
    replay_ops(database, bootstrap)
    database.refresh()  # both policies start from a warm snapshot
    start = time.perf_counter()
    answers = replay_ops(database, mixed)
    elapsed = time.perf_counter() - start
    return database, answers, elapsed


def test_policies_answer_identically():
    bootstrap, mixed = _streams()
    _, rebuild_answers, _ = _replay("rebuild", bootstrap, mixed)
    overlay_db, overlay_answers, _ = _replay("overlay", bootstrap, mixed)
    assert overlay_answers == rebuild_answers
    assert overlay_db.stats()["overlay_queries"] > 0


@pytest.mark.parametrize("policy", ["rebuild", "overlay"])
def test_mixed_workload_cost(benchmark, policy):
    bootstrap, mixed = _streams()

    def run():
        _, answers, _ = _replay(policy, bootstrap, mixed)
        return len(answers)

    answered = benchmark.pedantic(run, rounds=3, iterations=1)
    assert answered > 0


def test_mixed_workload_report(benchmark, report):
    bootstrap, mixed = _streams()
    stats = MixedWorkload.describe(mixed)

    def sweep():
        rows = []
        baseline = None
        for policy in ("rebuild", "overlay"):
            database, answers, elapsed = _replay(policy, bootstrap, mixed)
            if baseline is None:
                baseline = elapsed
                reference = answers
            else:
                assert answers == reference, "overlay diverged from rebuild"
            counters = database.stats()
            rows.append([
                policy,
                round(elapsed * 1e3, 1),
                round(baseline / elapsed, 1),
                counters["rebuilds"],
                counters["overlay_queries"],
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["policy", "total [ms]", "speedup", "rebuilds", "overlay queries"],
            rows,
            title=(
                f"Mixed workload ({stats.num_queries} queries / "
                f"{stats.num_writes} writes, {stats.num_removals} removals): "
                "rebuild-per-write vs delta overlay"
            ),
        )
    )
