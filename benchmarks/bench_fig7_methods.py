"""Figure 7 — comparing all evaluation methods.

The paper's headline experiment: SpaReach-BFL, GeoReach, SocReach,
3DReach and 3DReach-Rev across region extent, query-vertex degree and
spatial selectivity on all four datasets.  Expected shape (paper): the
3DReach methods fastest overall (orders of magnitude vs GeoReach);
SpaReach-BFL degrades as the region extent / selectivity grows; SocReach
is uncompetitive except at very large extents; GeoReach improves with
extent (pruning bites) but degrades with the query vertex's out-degree.
"""

import json

import pytest

from repro.bench import (
    bench_datasets,
    format_table,
    time_queries,
    time_queries_counted,
)
from repro.bench.experiments import (
    DEFAULT_BUCKET,
    DEFAULT_EXTENT,
    get_workload,
    run_fig7,
)
from repro.bench.harness import PAPER_METHODS, bench_num_queries, get_bundle
from repro.core import METHOD_REGISTRY
from repro.workloads import DEFAULT_EXTENTS

REGISTRY_METHODS = tuple(sorted(METHOD_REGISTRY))


@pytest.mark.parametrize("method_name", PAPER_METHODS)
@pytest.mark.parametrize("dataset", bench_datasets())
def test_query_default_config(benchmark, dataset, method_name):
    bundle = get_bundle(dataset, PAPER_METHODS)
    batch = get_workload(dataset).batch_by_extent(
        DEFAULT_EXTENT, DEFAULT_BUCKET, bench_num_queries()
    )
    method = bundle[method_name]
    avg, positives, work = benchmark.pedantic(
        lambda: time_queries_counted(method, batch), rounds=3, iterations=1
    )
    benchmark.extra_info["avg_query_us"] = avg * 1e6
    benchmark.extra_info["positives"] = positives
    for key, value in work.items():
        benchmark.extra_info[f"per_query_{key}"] = value


@pytest.mark.parametrize("extent", DEFAULT_EXTENTS)
@pytest.mark.parametrize("method_name", ("spareach-bfl", "3dreach"))
def test_extent_sweep_crossover(benchmark, method_name, extent):
    """SpaReach degrades with extent while 3DReach stays flat."""
    datasets = bench_datasets()
    dataset = "gowalla" if "gowalla" in datasets else datasets[0]
    bundle = get_bundle(dataset, PAPER_METHODS)
    batch = get_workload(dataset).batch_by_extent(
        extent, DEFAULT_BUCKET, bench_num_queries()
    )
    method = bundle[method_name]
    avg, _ = benchmark.pedantic(
        lambda: time_queries(method, batch), rounds=3, iterations=1
    )
    benchmark.extra_info["avg_query_us"] = avg * 1e6


@pytest.mark.parametrize("dataset", bench_datasets())
def test_all_methods_agree(dataset):
    from repro.core import RangeReachOracle, assert_agreement
    from repro.bench.harness import get_network

    bundle = get_bundle(dataset, PAPER_METHODS)
    batch = get_workload(dataset).batch_by_extent(DEFAULT_EXTENT, DEFAULT_BUCKET, 20)
    assert_agreement(
        [bundle[name] for name in PAPER_METHODS],
        batch,
        reference=RangeReachOracle(get_network(dataset)),
    )


def test_fig7_work_counters(benchmark, report, results_dir):
    """Per-query work counters for every registered method.

    The observability layer's per-method counters reproduce the cost
    drivers the paper's analysis discusses: label probes (reach tests /
    cuboid queries), R-tree node visits, and candidates verified.
    """
    datasets = bench_datasets()
    dataset = "gowalla" if "gowalla" in datasets else datasets[0]
    bundle = get_bundle(dataset, REGISTRY_METHODS)
    batch = get_workload(dataset).batch_by_extent(
        DEFAULT_EXTENT, DEFAULT_BUCKET, bench_num_queries()
    )

    def run():
        rows = []
        for name in REGISTRY_METHODS:
            avg, positives, work = time_queries_counted(bundle[name], batch)
            rows.append(
                (
                    name,
                    f"{avg * 1e6:.1f}",
                    f"{work['label_probes']:.1f}",
                    f"{work['rtree_nodes']:.1f}",
                    f"{work['candidates_verified']:.1f}",
                    positives,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(rows) == len(REGISTRY_METHODS)
    # Every method must have flushed its query counter: the avg work
    # columns come from the shared registry, not per-method ad-hoc dicts.
    headers = (
        "method", "avg us", "label probes/q", "rtree nodes/q",
        "verified/q", "positives",
    )
    report(
        format_table(
            headers, rows,
            title=f"Per-query work counters — {dataset}",
        )
    )
    artifact = results_dir / "fig7_work_counters.json"
    artifact.write_text(
        json.dumps(
            {
                "dataset": dataset,
                "headers": list(headers),
                "rows": [list(r) for r in rows],
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    assert artifact.exists()


def test_fig7_report(benchmark, report):
    title, headers, rows = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    assert rows
    report(format_table(headers, rows, title=title))


def test_fig7_charts(benchmark, report):
    """Log-scale ASCII renderings of the Figure 7 extent sweep."""
    from repro.bench.ascii_chart import render_series
    from repro.bench.experiments import chart_series

    def build():
        charts = []
        for dataset in bench_datasets():
            x_labels, series = chart_series(dataset, PAPER_METHODS, "extent")
            charts.append(
                render_series(
                    f"Figure 7 — {dataset}, vary region extent "
                    "(avg query time, log scale)",
                    x_labels,
                    series,
                )
            )
        return charts

    charts = benchmark.pedantic(build, rounds=1, iterations=1)
    report("\n\n".join(charts))


def test_fig7_svg_artifacts(benchmark, report, results_dir):
    """Write Figure 7 as SVG files under benchmarks/results/."""
    from repro.bench.experiments import chart_series
    from repro.bench.svg_chart import write_svg

    def build():
        written = []
        for dataset in bench_datasets():
            for axis in ("extent", "degree", "selectivity"):
                x_labels, series = chart_series(dataset, PAPER_METHODS, axis)
                path = write_svg(
                    results_dir / f"fig7_{dataset}_{axis}.svg",
                    f"Figure 7 — {dataset}, vary {axis}",
                    x_labels,
                    series,
                )
                written.append(path)
        return written

    written = benchmark.pedantic(build, rounds=1, iterations=1)
    assert all(p.exists() for p in written)
    report(
        "Figure 7 SVG artifacts written:\n"
        + "\n".join(f"  {p}" for p in written)
    )
