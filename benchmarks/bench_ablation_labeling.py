"""Ablations around the interval labeling (not part of the paper's figures).

* **Construction mode** — the verbatim Algorithm 1 ("faithful") vs the
  equivalent near-linear "subtree" construction, on a reduced-size input
  (the faithful mode is quadratic by design).
* **Spanning-forest strategy** — the paper's future work asks about
  "optimal (e.g., shallow) spanning forests"; we compare child-visit
  orders by the compressed label count they induce.
* **DAG reduction preprocessing** — transitive + equivalence reduction
  (Section 7.1's acceleration idea) before labeling: fewer vertices and
  edges, smaller labelings, same answers.
* **SocReach descendant access** — array walk vs B+-tree range scans
  (the two options named in Section 4.1).
"""

import pytest

from repro.bench import bench_datasets, format_table, time_queries
from repro.bench.experiments import DEFAULT_BUCKET, DEFAULT_EXTENT, get_workload
from repro.bench.harness import bench_num_queries, get_bundle, get_condensed
from repro.datasets import make_network
from repro.geosocial import condense_network
from repro.graph import reduce_dag
from repro.graph.traversal import dfs_forest
from repro.labeling import build_labeling


def _dataset() -> str:
    datasets = bench_datasets()
    return "yelp" if "yelp" in datasets else datasets[0]


@pytest.mark.parametrize("mode", ["subtree", "faithful"])
def test_construction_mode(benchmark, mode):
    # The faithful mode is quadratic; use a deliberately tiny instance.
    network = make_network(_dataset(), scale=0.0002, seed=1)
    dag = condense_network(network).dag
    labeling = benchmark(build_labeling, dag, mode)
    assert labeling.num_vertices == dag.num_vertices


def test_construction_modes_agree_on_small_input():
    network = make_network(_dataset(), scale=0.0002, seed=1)
    dag = condense_network(network).dag
    assert (
        build_labeling(dag, "subtree").labels
        == build_labeling(dag, "faithful").labels
    )


@pytest.mark.parametrize("child_order", ["natural", "degree", "degree-asc"])
def test_forest_strategy(benchmark, child_order):
    dag = get_condensed(_dataset()).dag
    forest = dfs_forest(dag, child_order=child_order)
    labeling = benchmark.pedantic(
        lambda: build_labeling(dag, forest=forest), rounds=1, iterations=1
    )
    benchmark.extra_info["compressed_labels"] = labeling.stats().compressed_labels


def test_forest_strategy_report(benchmark, report):
    def sweep():
        dag = get_condensed(_dataset()).dag
        rows = []
        for child_order in ("natural", "degree", "degree-asc"):
            forest = dfs_forest(dag, child_order=child_order)
            stats = build_labeling(dag, forest=forest).stats()
            rows.append(
                [child_order, stats.uncompressed_labels, stats.compressed_labels]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["child order", "uncompressed", "compressed"],
            rows,
            title=(
                f"Ablation — spanning-forest strategy on {_dataset()} "
                "(label counts; future-work knob of Section 8)"
            ),
        )
    )


def test_dag_reduction_report(benchmark, report):
    def sweep():
        rows = []
        for dataset in bench_datasets():
            dag = get_condensed(dataset).dag
            reduced = reduce_dag(dag)
            before = build_labeling(dag).stats()
            after = build_labeling(reduced.dag).stats()
            rows.append(
                [
                    dataset,
                    dag.num_vertices, reduced.dag.num_vertices,
                    dag.num_edges, reduced.dag.num_edges,
                    before.compressed_labels, after.compressed_labels,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        _, v0, v1, e0, e1, l0, l1 = row
        assert v1 <= v0 and e1 <= e0 and l1 <= l0
    report(
        format_table(
            ["dataset", "|V|", "|V| reduced", "|E|", "|E| reduced",
             "labels", "labels reduced"],
            rows,
            title="Ablation — DAG reduction (transitive + equivalence) "
                  "before labeling",
        )
    )


def test_post_stride_report(benchmark, report):
    """Gapped numbering (Section 4.1's update head-room) vs compression."""

    def sweep():
        dag = get_condensed(_dataset()).dag
        rows = []
        for stride in (1, 4, 16, 64):
            stats = build_labeling(dag, post_stride=stride).stats()
            rows.append(
                [stride, stats.uncompressed_labels, stats.compressed_labels]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # gaps can only hurt compression
    compressed = [row[2] for row in rows]
    assert compressed == sorted(compressed)
    report(
        format_table(
            ["post stride", "uncompressed", "compressed"],
            rows,
            title=(
                f"Ablation — gapped post-order numbering on {_dataset()} "
                "(update head-room vs compression, Section 4.1)"
            ),
        )
    )


@pytest.mark.parametrize("variant", ["socreach", "socreach-bptree"])
def test_socreach_access_path(benchmark, variant):
    dataset = _dataset()
    bundle = get_bundle(dataset, ("socreach", "socreach-bptree"))
    batch = get_workload(dataset).batch_by_extent(
        DEFAULT_EXTENT, DEFAULT_BUCKET, bench_num_queries()
    )
    method = bundle[variant]
    avg, _ = benchmark.pedantic(
        lambda: time_queries(method, batch), rounds=3, iterations=1
    )
    benchmark.extra_info["avg_query_us"] = avg * 1e6


def test_socreach_access_paths_agree():
    dataset = _dataset()
    bundle = get_bundle(dataset, ("socreach", "socreach-bptree"))
    batch = get_workload(dataset).batch_by_extent(DEFAULT_EXTENT, DEFAULT_BUCKET, 25)
    for query in batch:
        assert bundle["socreach"].query(query.vertex, query.region) == bundle[
            "socreach-bptree"
        ].query(query.vertex, query.region)
