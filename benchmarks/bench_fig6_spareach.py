"""Figure 6 — determining the best spatial-first method.

SpaReach-BFL vs SpaReach-INT across region extent, vertex degree and
spatial selectivity.  Expected shape (paper): SpaReach-BFL wins almost
everywhere (BFL answers GReach faster than interval labels), with the
gap widest on the venue-heavy inputs where a region holds many
candidates.
"""

import pytest

from repro.bench import bench_datasets, format_table, time_queries
from repro.bench.experiments import (
    DEFAULT_BUCKET,
    DEFAULT_EXTENT,
    get_workload,
    run_fig6,
)
from repro.bench.harness import bench_num_queries, get_bundle
from repro.workloads import DEFAULT_EXTENTS

_METHODS = ("spareach-bfl", "spareach-int")


@pytest.mark.parametrize("method_name", _METHODS)
@pytest.mark.parametrize("dataset", bench_datasets())
def test_query_default_config(benchmark, dataset, method_name):
    bundle = get_bundle(dataset, _METHODS)
    batch = get_workload(dataset).batch_by_extent(
        DEFAULT_EXTENT, DEFAULT_BUCKET, bench_num_queries()
    )
    method = bundle[method_name]
    avg, _ = benchmark.pedantic(
        lambda: time_queries(method, batch), rounds=3, iterations=1
    )
    benchmark.extra_info["avg_query_us"] = avg * 1e6


@pytest.mark.parametrize("extent", DEFAULT_EXTENTS)
def test_query_extent_sweep_gowalla(benchmark, extent):
    if "gowalla" not in bench_datasets():
        pytest.skip("gowalla excluded via REPRO_DATASETS")
    bundle = get_bundle("gowalla", _METHODS)
    batch = get_workload("gowalla").batch_by_extent(
        extent, DEFAULT_BUCKET, bench_num_queries()
    )
    method = bundle["spareach-bfl"]
    avg, _ = benchmark.pedantic(
        lambda: time_queries(method, batch), rounds=3, iterations=1
    )
    benchmark.extra_info["avg_query_us"] = avg * 1e6


@pytest.mark.parametrize("dataset", bench_datasets())
def test_methods_agree(dataset):
    bundle = get_bundle(dataset, _METHODS)
    batch = get_workload(dataset).batch_by_extent(DEFAULT_EXTENT, DEFAULT_BUCKET, 20)
    for query in batch:
        assert bundle["spareach-bfl"].query(query.vertex, query.region) == bundle[
            "spareach-int"
        ].query(query.vertex, query.region)


def test_fig6_report(benchmark, report):
    title, headers, rows = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    assert rows
    report(format_table(headers, rows, title=title))


def test_fig6_svg_artifacts(benchmark, report, results_dir):
    from repro.bench.experiments import chart_series
    from repro.bench.svg_chart import write_svg

    def build():
        written = []
        for dataset in bench_datasets():
            x_labels, series = chart_series(dataset, _METHODS, "extent")
            written.append(
                write_svg(
                    results_dir / f"fig6_{dataset}_extent.svg",
                    f"Figure 6 — {dataset}, vary region extent",
                    x_labels,
                    series,
                )
            )
        return written

    written = benchmark.pedantic(build, rounds=1, iterations=1)
    assert all(p.exists() for p in written)
    report(
        "Figure 6 SVG artifacts written:\n"
        + "\n".join(f"  {p}" for p in written)
    )
