"""Ablation — GeoReach construction parameters.

The paper sets MAX_RMBR, MAX_REACH_GRIDS and MERGE_COUNT "as suggested by
the authors"; this sweep shows how the knobs trade SPA-graph size and
build time against query time, and how the B/R/G class mix shifts.
"""

import pytest

from repro.bench import bench_datasets, format_table, time_queries
from repro.bench.experiments import DEFAULT_BUCKET, DEFAULT_EXTENT, get_workload
from repro.bench.harness import bench_num_queries, build_timed, get_condensed
from repro.bench.tables import mb, us
from repro.core import GeoReach, GeoReachParams

_SETTINGS = {
    "default": GeoReachParams(),
    "coarse-grid": GeoReachParams(grid_levels=4),
    "fine-grid": GeoReachParams(grid_levels=10, max_reach_grids=256),
    "tight-grids": GeoReachParams(max_reach_grids=8),
    "eager-merge": GeoReachParams(merge_count=1),
    "tiny-rmbr": GeoReachParams(max_rmbr_ratio=0.05),
}


def _dataset() -> str:
    datasets = bench_datasets()
    return "foursquare" if "foursquare" in datasets else datasets[0]


@pytest.mark.parametrize("setting", sorted(_SETTINGS))
def test_build_with_params(benchmark, setting):
    condensed = get_condensed(_dataset())
    params = _SETTINGS[setting]
    method = benchmark.pedantic(
        lambda: GeoReach(condensed, params), rounds=1, iterations=1
    )
    benchmark.extra_info["size_mb"] = mb(method.size_bytes())
    benchmark.extra_info["classes"] = method.class_counts()


@pytest.mark.parametrize("setting", sorted(_SETTINGS))
def test_query_with_params(benchmark, setting):
    condensed = get_condensed(_dataset())
    method = GeoReach(condensed, _SETTINGS[setting])
    batch = get_workload(_dataset()).batch_by_extent(
        DEFAULT_EXTENT, DEFAULT_BUCKET, bench_num_queries()
    )
    avg, _ = benchmark.pedantic(
        lambda: time_queries(method, batch), rounds=3, iterations=1
    )
    benchmark.extra_info["avg_query_us"] = avg * 1e6


def test_params_do_not_change_answers():
    condensed = get_condensed(_dataset())
    methods = [GeoReach(condensed, p) for p in _SETTINGS.values()]
    batch = get_workload(_dataset()).batch_by_extent(DEFAULT_EXTENT, DEFAULT_BUCKET, 20)
    for query in batch:
        answers = {m.query(query.vertex, query.region) for m in methods}
        assert len(answers) == 1


def test_georeach_params_report(benchmark, report):
    def sweep():
        condensed = get_condensed(_dataset())
        workload = get_workload(_dataset())
        batch = workload.batch_by_extent(
            DEFAULT_EXTENT, DEFAULT_BUCKET, bench_num_queries()
        )
        rows = []
        for name, params in sorted(_SETTINGS.items()):
            method, build_s = build_timed(lambda p=params: GeoReach(condensed, p))
            avg, _ = time_queries(method, batch)
            classes = method.class_counts()
            rows.append([
                name, f"{build_s:.2f}", f"{mb(method.size_bytes()):.3f}",
                round(us(avg), 1),
                classes["B"], classes["R"], classes["G"],
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["setting", "build [s]", "size [MB]", "query [us]",
             "#B", "#R", "#G"],
            rows,
            title=f"Ablation — GeoReach construction parameters on {_dataset()}",
        )
    )
