"""Sharded scatter-gather serving vs. the monolithic baseline.

Three measurements over one frozen synthetic workload, all against the
same seed network:

* **Parity gate** — every sharded configuration (2, 4, 8 shards) must
  answer the frozen region workload *identically* to the unsharded
  :class:`~repro.system.GeosocialDatabase` and to the BFS oracle; a
  single mismatch fails the run.  The planner's pruning work is read
  back from ``stats()``: the artifact reports both the mean fraction of
  shards **pruned** per region query (MBR miss + boundary-graph
  unreachable) and its complement, the mean fraction **touched**; the
  pruning gate requires the touched fraction to stay below 0.5 — i.e.
  pruning removes more than half the shards on an average region query.
* **Scatter-gather batch throughput** — batched queries/s through the
  same :class:`~repro.exec.ParallelExecutor` for the sharded and the
  monolithic database (reported, not gated: small shards trade some
  raw throughput for blast radius and pruning).
* **Delete-churn rebuild seconds** — the tentpole claim.  The same
  sequence of snapshot-edge removals is applied to a monolithic and a
  4-shard database, forcing a rebuild after each; total rebuild time
  comes from the ``repro_db_rebuild_seconds`` histogram (registry reset
  around each run).  The gate requires the sharded total to be
  *strictly below* the monolithic one — removals rebuild one shard,
  not the world.

The artifact ``benchmarks/results/shards.json`` carries config, parity
verdicts, pruning fractions, throughput, and churn timings.  ``--smoke``
runs a seconds-scale version that keeps the parity and schema gates but
skips the timing-sensitive churn/pruning gates (machine noise).
"""

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import format_table  # noqa: E402
from repro.core.oracle import RangeReachOracle  # noqa: E402
from repro.datasets import make_network  # noqa: E402
from repro.exec import ParallelExecutor  # noqa: E402
from repro.geometry import Rect  # noqa: E402
from repro.obs import instruments as _inst  # noqa: E402
from repro.obs.metrics import REGISTRY, disable, enable  # noqa: E402
from repro.shard import ShardedDatabase  # noqa: E402
from repro.system import GeosocialDatabase  # noqa: E402

ARTIFACT_VERSION = 1
SHARD_COUNTS = (2, 4, 8)
CHURN_SHARDS = 4


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def build_workload(network, count: int, seed: int) -> list[tuple[int, Rect]]:
    """A frozen list of ``(vertex, region)`` pairs: mixed sources
    (users and venues), regions covering ~1-10% of SPACE per side."""
    rng = random.Random(seed)
    space = network.space()
    width = space.xhi - space.xlo
    height = space.yhi - space.ylo
    pairs: list[tuple[int, Rect]] = []
    for _ in range(count):
        vertex = rng.randrange(network.num_vertices)
        side_x = width * rng.uniform(0.1, 0.33)
        side_y = height * rng.uniform(0.1, 0.33)
        xlo = space.xlo + rng.random() * (width - side_x)
        ylo = space.ylo + rng.random() * (height - side_y)
        pairs.append((vertex, Rect(xlo, ylo, xlo + side_x, ylo + side_y)))
    return pairs


# ----------------------------------------------------------------------
# Parity + pruning
# ----------------------------------------------------------------------
def run_parity(network, workload, shard_counts) -> dict:
    oracle = RangeReachOracle(network)
    monolithic = GeosocialDatabase.from_network(network)
    expected = monolithic.range_reach_many(workload)
    oracle_mismatches = sum(
        1
        for (vertex, region), answer in zip(workload, expected)
        if oracle.query(vertex, region) != answer
    )
    configs = []
    for shards in shard_counts:
        database = ShardedDatabase.from_network(network, shards=shards)
        answers = database.range_reach_many(workload)
        mismatches = sum(1 for a, b in zip(answers, expected) if a != b)
        scatter = database.stats()["scatter"]
        checks = scatter["region_checks"]
        pruned = scatter["region_pruned"] + scatter["source_pruned"]
        configs.append({
            "shards": shards,
            "queries": len(workload),
            "mismatches": mismatches,
            "cross_edges": scatter["cross_edges"],
            "subqueries": scatter["subqueries"],
            # Exit-set reachability probes the boundary planner issued
            # (memoized per (shard, entry): repeats in the workload are
            # free, so per-query means below 1.0 are possible).
            "boundary_probes": scatter["boundary_probes"],
            "boundary_probes_per_query": (
                scatter["boundary_probes"] / len(workload)
                if workload
                else 0.0
            ),
            "mean_pruned_shard_fraction": pruned / checks if checks else 0.0,
            "mean_touched_shard_fraction": (
                (checks - pruned) / checks if checks else 1.0
            ),
        })
    return {
        "oracle_mismatches": oracle_mismatches,
        "configs": configs,
    }


# ----------------------------------------------------------------------
# Batch throughput
# ----------------------------------------------------------------------
def _measure_qps(database, workload, workers: int, rounds: int) -> float:
    with ParallelExecutor(workers=workers) as executor:
        database.range_reach_many(workload, executor)  # warm the indexes
        started = time.perf_counter()
        for _ in range(rounds):
            database.range_reach_many(workload, executor)
        elapsed = time.perf_counter() - started
    return rounds * len(workload) / elapsed if elapsed > 0 else 0.0


def run_throughput(network, workload, *, workers: int, rounds: int) -> dict:
    monolithic = GeosocialDatabase.from_network(network)
    sharded = ShardedDatabase.from_network(network, shards=CHURN_SHARDS)
    mono_qps = _measure_qps(monolithic, workload, workers, rounds)
    shard_qps = _measure_qps(sharded, workload, workers, rounds)
    # The same layout under each kernel backend isolates how much of
    # the scatter cost the vectorized kernels win back.
    by_backend = {}
    for backend in ("python", "numpy"):
        database = ShardedDatabase.from_network(
            network, shards=CHURN_SHARDS, kernels=backend
        )
        by_backend[backend] = _measure_qps(
            database, workload, workers, rounds
        )
    return {
        "workers": workers,
        "rounds": rounds,
        "batch_size": len(workload),
        "monolithic_qps": mono_qps,
        "sharded_qps": shard_qps,
        "sharded_over_monolithic": (
            shard_qps / mono_qps if mono_qps > 0 else 0.0
        ),
        "sharded_python_qps": by_backend["python"],
        "sharded_numpy_qps": by_backend["numpy"],
        "numpy_over_python": (
            by_backend["numpy"] / by_backend["python"]
            if by_backend["python"] > 0
            else 0.0
        ),
    }


# ----------------------------------------------------------------------
# Delete-churn rebuild cost
# ----------------------------------------------------------------------
def _removal_plan(network, count: int, seed: int) -> list[tuple[int, int, str]]:
    """``count`` removable snapshot edges (with the op to re-add them not
    needed — each is removed once), shuffled deterministically."""
    rng = random.Random(seed)
    kinds = network.kinds
    edges = sorted(network.graph.edges())
    rng.shuffle(edges)
    plan: list[tuple[int, int, str]] = []
    for u, v in edges:
        op = "checkin" if kinds[v] == "venue" else "follow"
        plan.append((u, v, op))
        if len(plan) >= count:
            break
    return plan


def _measure_churn(database, plan) -> dict:
    # Force every index build *before* the measurement window so the
    # rebuild histogram captures churn-induced rebuilds only.
    database.refresh()
    REGISTRY.reset()
    started = time.perf_counter()
    for u, v, op in plan:
        if op == "checkin":
            database.remove_checkin(u, v)
        else:
            database.remove_follow(u, v)
        database.refresh()
    wall = time.perf_counter() - started
    return {
        "removals": len(plan),
        "rebuilds": int(_inst.DB_REBUILDS.value),
        "rebuild_seconds": _inst.DB_REBUILD_SECONDS.sum,
        "wall_seconds": wall,
    }


def run_churn(network, removals: int, seed: int) -> dict:
    plan = _removal_plan(network, removals, seed)
    enable()
    try:
        REGISTRY.reset()
        monolithic = _measure_churn(
            GeosocialDatabase.from_network(network), plan
        )
        REGISTRY.reset()
        sharded = _measure_churn(
            ShardedDatabase.from_network(network, shards=CHURN_SHARDS), plan
        )
    finally:
        disable()
        REGISTRY.reset()
    return {
        "shards": CHURN_SHARDS,
        "monolithic": monolithic,
        "sharded": sharded,
        "sharded_over_monolithic": (
            sharded["rebuild_seconds"] / monolithic["rebuild_seconds"]
            if monolithic["rebuild_seconds"] > 0
            else 0.0
        ),
    }


# ----------------------------------------------------------------------
# Artifact
# ----------------------------------------------------------------------
def validate_artifact(artifact: dict) -> list[str]:
    """Schema check the CI smoke gate runs; returns problem strings."""
    problems: list[str] = []

    def need(mapping, key, kinds, where):
        if not isinstance(mapping, dict) or key not in mapping:
            problems.append(f"{where}: missing {key!r}")
            return None
        value = mapping[key]
        if not isinstance(value, kinds) or isinstance(value, bool):
            problems.append(f"{where}: {key!r} has type {type(value).__name__}")
            return None
        return value

    need(artifact, "version", int, "artifact")
    need(artifact, "config", dict, "artifact")
    parity = need(artifact, "parity", dict, "artifact")
    if parity is not None:
        need(parity, "oracle_mismatches", int, "parity")
        configs = need(parity, "configs", list, "parity")
        for i, config in enumerate(configs or []):
            for key, kinds in (
                ("shards", int),
                ("queries", int),
                ("mismatches", int),
                ("cross_edges", int),
                ("subqueries", int),
                ("boundary_probes", int),
                ("boundary_probes_per_query", (int, float)),
                ("mean_pruned_shard_fraction", (int, float)),
                ("mean_touched_shard_fraction", (int, float)),
            ):
                need(config, key, kinds, f"parity.configs[{i}]")
    throughput = need(artifact, "throughput", dict, "artifact")
    if throughput is not None:
        for key in (
            "monolithic_qps",
            "sharded_qps",
            "sharded_python_qps",
            "sharded_numpy_qps",
        ):
            need(throughput, key, (int, float), "throughput")
    churn = need(artifact, "churn", dict, "artifact")
    if churn is not None:
        for side in ("monolithic", "sharded"):
            block = need(churn, side, dict, "churn")
            if block is not None:
                need(block, "rebuild_seconds", (int, float), f"churn.{side}")
                need(block, "rebuilds", int, f"churn.{side}")
    need(artifact, "gates", dict, "artifact")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run: parity + schema gates only "
        "(timing gates skipped)",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale (default 0.004; smoke 0.001)")
    parser.add_argument("--queries", type=int, default=None,
                        help="frozen workload size (default 400; smoke 80)")
    parser.add_argument("--removals", type=int, default=None,
                        help="delete-churn removals (default 24; smoke 6)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=None,
                        help="throughput rounds (default 8; smoke 2)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out", default=str(Path(__file__).parent / "results" / "shards.json")
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (
        0.001 if args.smoke else 0.004
    )
    queries = args.queries if args.queries is not None else (
        80 if args.smoke else 400
    )
    removals = args.removals if args.removals is not None else (
        6 if args.smoke else 24
    )
    rounds = args.rounds if args.rounds is not None else (
        2 if args.smoke else 8
    )

    network = make_network("gowalla", scale=scale, seed=args.seed)
    workload = build_workload(network, queries, args.seed + 1)
    print(
        f"network: {network.num_vertices} vertices, "
        f"{network.num_edges} edges, {network.num_spatial} venues; "
        f"workload: {len(workload)} region queries"
    )

    parity = run_parity(network, workload, SHARD_COUNTS)
    throughput = run_throughput(
        network, workload, workers=args.workers, rounds=rounds
    )
    churn = run_churn(network, removals, args.seed + 2)

    total_mismatches = parity["oracle_mismatches"] + sum(
        c["mismatches"] for c in parity["configs"]
    )
    touched_by_shards = {
        c["shards"]: c["mean_touched_shard_fraction"]
        for c in parity["configs"]
    }
    pruning_ok = touched_by_shards.get(CHURN_SHARDS, 1.0) < 0.5
    churn_ok = (
        churn["sharded"]["rebuild_seconds"]
        < churn["monolithic"]["rebuild_seconds"]
    )
    gates = {
        "parity": {"mismatches": total_mismatches, "ok": total_mismatches == 0},
        "pruning": {
            "mean_touched_shard_fraction": touched_by_shards.get(
                CHURN_SHARDS
            ),
            "threshold": 0.5,
            "ok": pruning_ok,
            "enforced": not args.smoke,
        },
        "churn": {
            "sharded_rebuild_seconds": churn["sharded"]["rebuild_seconds"],
            "monolithic_rebuild_seconds": (
                churn["monolithic"]["rebuild_seconds"]
            ),
            "ok": churn_ok,
            "enforced": not args.smoke,
        },
    }

    artifact = {
        "version": ARTIFACT_VERSION,
        "benchmark": "shards",
        "smoke": args.smoke,
        "config": {
            "profile": "gowalla",
            "scale": scale,
            "seed": args.seed,
            "queries": queries,
            "removals": removals,
            "workers": args.workers,
            "rounds": rounds,
            "shard_counts": list(SHARD_COUNTS),
            "vertices": network.num_vertices,
            "edges": network.num_edges,
            "venues": network.num_spatial,
        },
        "parity": parity,
        "throughput": throughput,
        "churn": churn,
        "gates": gates,
    }

    print(format_table(
        ["shards", "mismatches", "pruned frac", "touched frac", "cross edges",
         "probes/query"],
        [
            [
                c["shards"],
                c["mismatches"],
                f"{c['mean_pruned_shard_fraction']:.3f}",
                f"{c['mean_touched_shard_fraction']:.3f}",
                c["cross_edges"],
                f"{c['boundary_probes_per_query']:.2f}",
            ]
            for c in parity["configs"]
        ],
        title="parity + pruning (vs unsharded and BFS oracle)",
    ))
    print(format_table(
        ["database", "batched qps"],
        [
            ["monolithic", f"{throughput['monolithic_qps']:.0f}"],
            [f"sharded({CHURN_SHARDS})", f"{throughput['sharded_qps']:.0f}"],
            [
                f"sharded({CHURN_SHARDS}, python)",
                f"{throughput['sharded_python_qps']:.0f}",
            ],
            [
                f"sharded({CHURN_SHARDS}, numpy)",
                f"{throughput['sharded_numpy_qps']:.0f}",
            ],
        ],
        title=f"batch throughput ({args.workers} workers)",
    ))
    print(format_table(
        ["database", "removals", "rebuilds", "rebuild s", "wall s"],
        [
            [
                side,
                churn[side]["removals"],
                churn[side]["rebuilds"],
                f"{churn[side]['rebuild_seconds']:.3f}",
                f"{churn[side]['wall_seconds']:.3f}",
            ]
            for side in ("monolithic", "sharded")
        ],
        title=f"delete-churn rebuild cost ({CHURN_SHARDS} shards)",
    ))

    problems = validate_artifact(artifact)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(artifact, indent=2, sort_keys=True))
    print(f"artifact: {out}")

    failures: list[str] = list(problems)
    if total_mismatches:
        failures.append(f"parity gate: {total_mismatches} mismatches")
    if not args.smoke:
        if not pruning_ok:
            failures.append(
                "pruning gate: mean touched-shard fraction "
                f"{touched_by_shards.get(CHURN_SHARDS):.3f} >= 0.5"
            )
        if not churn_ok:
            failures.append(
                "churn gate: sharded rebuild seconds "
                f"{churn['sharded']['rebuild_seconds']:.3f} not below "
                f"monolithic {churn['monolithic']['rebuild_seconds']:.3f}"
            )
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if not failures:
        print("all gates passed" if not args.smoke
              else "smoke gates passed (timing gates skipped)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
