"""Table 3 — dataset characteristics.

Benchmarks the per-dataset statistics pass (SCC detection dominates) and
prints the Table 3 replica.
"""

import pytest

from repro.bench import bench_datasets, format_table, get_network
from repro.bench.experiments import run_table3


@pytest.mark.parametrize("dataset", bench_datasets())
def test_table3_stats(benchmark, dataset):
    network = get_network(dataset)
    stats = benchmark(network.stats)
    assert stats.num_vertices == network.num_vertices
    assert stats.largest_scc >= 1


def test_table3_report(benchmark, report):
    title, headers, rows = benchmark.pedantic(
        run_table3, rounds=1, iterations=1
    )
    assert len(rows) == len(bench_datasets())
    report(format_table(headers, rows, title=title))
