"""Benchmarks for the extended query family (beyond the paper).

Measures the cost of counting, enumeration, thresholds and
nearest-reachable on the 3DReach structures, relative to the boolean
RangeReach they generalize.
"""

import pytest

from repro.bench import bench_datasets, format_table
from repro.bench.experiments import DEFAULT_BUCKET, DEFAULT_EXTENT, get_workload
from repro.bench.harness import bench_num_queries, get_condensed
from repro.bench.tables import us
from repro.core import GeosocialQueryEngine
from repro.geometry import Point

_ENGINES: dict[str, GeosocialQueryEngine] = {}


def _dataset() -> str:
    datasets = bench_datasets()
    return "foursquare" if "foursquare" in datasets else datasets[0]


def _engine() -> GeosocialQueryEngine:
    name = _dataset()
    if name not in _ENGINES:
        _ENGINES[name] = GeosocialQueryEngine(get_condensed(name))
    return _ENGINES[name]


def _batch():
    return get_workload(_dataset()).batch_by_extent(
        DEFAULT_EXTENT, DEFAULT_BUCKET, bench_num_queries()
    )


@pytest.mark.parametrize(
    "operation", ["range_reach", "count", "witnesses", "at_least_5"]
)
def test_extended_query_cost(benchmark, operation):
    engine = _engine()
    batch = _batch()

    def run():
        total = 0
        for query in batch:
            if operation == "range_reach":
                total += engine.query(query.vertex, query.region)
            elif operation == "count":
                total += engine.count(query.vertex, query.region)
            elif operation == "witnesses":
                total += len(engine.witnesses(query.vertex, query.region))
            else:
                total += engine.at_least(query.vertex, query.region, 5)
        return total

    total = benchmark.pedantic(run, rounds=3, iterations=1)
    assert total >= 0


def test_nearest_cost(benchmark):
    engine = _engine()
    batch = _batch()
    centers = [
        Point(q.region.center.x, q.region.center.y) for q in batch
    ]

    def run():
        found = 0
        for query, center in zip(batch, centers):
            if engine.nearest(query.vertex, center) is not None:
                found += 1
        return found

    found = benchmark.pedantic(run, rounds=3, iterations=1)
    assert found >= 0


def test_extended_queries_consistent():
    engine = _engine()
    for query in _batch()[:25]:
        count = engine.count(query.vertex, query.region)
        witnesses = engine.witnesses(query.vertex, query.region)
        assert len(witnesses) == count
        assert engine.query(query.vertex, query.region) == (count > 0)
        assert engine.at_least(query.vertex, query.region, count)
        assert not engine.at_least(query.vertex, query.region, count + 1)


def test_extensions_report(benchmark, report):
    def sweep():
        engine = _engine()
        batch = _batch()
        import time

        rows = []
        for label, runner in (
            ("range_reach", lambda q: engine.query(q.vertex, q.region)),
            ("count", lambda q: engine.count(q.vertex, q.region)),
            ("witnesses", lambda q: engine.witnesses(q.vertex, q.region)),
            ("at_least(5)", lambda q: engine.at_least(q.vertex, q.region, 5)),
            ("nearest", lambda q: engine.nearest(
                q.vertex, Point(q.region.center.x, q.region.center.y)
            )),
        ):
            start = time.perf_counter()
            for query in batch:
                runner(query)
            avg = (time.perf_counter() - start) / len(batch)
            rows.append([label, round(us(avg), 1)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        format_table(
            ["operation", "avg [us]"],
            rows,
            title=(
                f"Extended query family on {_dataset()} "
                "(GeosocialQueryEngine over the 3DReach structures)"
            ),
        )
    )
