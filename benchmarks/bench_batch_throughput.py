"""Batched / parallel execution — throughput vs. the per-query loop.

The serving-side claim behind :mod:`repro.exec`: when a query batch
reuses regions (hot areas queried by many users), the vectorized
``query_batch`` overrides amortize index work across the batch — for
SpaReach each distinct region hits the R-tree **once** — so batched
throughput beats the per-query ``query()`` loop by a wide margin, and a
:class:`~repro.exec.ParallelExecutor` preserves that win while adding
deadline control.

The workload cycles ``UNIQUE_REGIONS`` distinct regions over the batch,
*grouped by region* — the order a serving layer produces after grouping
a request log by hot area, and the order that keeps executor chunks
region-coherent.  Three modes run over identical queries:

* **sequential** — the per-query ``query()`` loop (the pre-batch API);
* **batched** — one ``query_batch`` call;
* **parallel** — the batch through ``ParallelExecutor(workers=4)``.

Answers must agree exactly across all three modes for every method
(asserted unconditionally).  At adequate scale the SpaReach batched and
parallel modes must clear 2x the sequential throughput.  The run writes
``benchmarks/results/batch_throughput.json``.
"""

import json
import random
import time

import pytest

from repro.bench import bench_datasets, bench_num_queries, format_table
from repro.bench.harness import get_bundle, get_network
from repro.exec import ParallelExecutor
from repro.workloads import QueryWorkload

UNIQUE_REGIONS = 16
EXTENT_PCT = 5.0
WORKERS = 4
# Below this batch size the timing ratio is noise-dominated; parity is
# still asserted, the speedup floor is not.
SPEEDUP_ASSERT_MIN_QUERIES = 200
METHODS = ("spareach-bfl", "socreach", "3dreach", "3dreach-rev")
# The region-dedup method the >= 2x acceptance floor is asserted on.
SPEEDUP_METHOD = "spareach-bfl"


def _region_reuse_queries(dataset: str, num_queries: int):
    """A region-reuse batch: UNIQUE_REGIONS regions, grouped by region."""
    bundle = get_bundle(dataset, method_names=METHODS)
    workload = QueryWorkload(get_network(dataset), seed=7)
    rng = random.Random(7)
    regions = [
        workload.region_with_extent(EXTENT_PCT, rng)
        for _ in range(UNIQUE_REGIONS)
    ]
    vertices = workload.sample_vertices(num_queries, (1, 10**9), rng)
    block = max(1, num_queries // UNIQUE_REGIONS)
    pairs = [
        (vertex, regions[(i // block) % UNIQUE_REGIONS])
        for i, vertex in enumerate(vertices)
    ]
    return bundle, pairs


def _measure(method, pairs, executor=None):
    """Return (elapsed seconds, answers) for one execution mode."""
    start = time.perf_counter()
    if executor is None:
        answers = [method.query(v, region) for v, region in pairs]
    else:
        answers = executor.run(method, pairs)
    return time.perf_counter() - start, answers


@pytest.mark.parametrize("dataset", bench_datasets())
def test_batch_parity(dataset):
    """Batched and parallel answers equal the per-query loop, always."""
    bundle, pairs = _region_reuse_queries(dataset, bench_num_queries())
    with ParallelExecutor(workers=WORKERS) as executor:
        for name, method in bundle.methods.items():
            expected = [method.query(v, region) for v, region in pairs]
            assert method.query_batch(pairs) == expected, name
            assert executor.run(method, pairs) == expected, name


def test_batch_throughput_report(report, results_dir):
    # The batch is padded up so the timing ratios mean something even
    # under a small REPRO_QUERIES; the speedup floor is only asserted
    # when the configured budget itself is adequate (CI's tiny smoke
    # profile checks parity and the artifact, not the ratio).
    num_queries = max(2 * SPEEDUP_ASSERT_MIN_QUERIES, 8 * bench_num_queries())
    assert_floor = 8 * bench_num_queries() >= SPEEDUP_ASSERT_MIN_QUERIES
    artifact = {
        "workers": WORKERS,
        "unique_regions": UNIQUE_REGIONS,
        "queries": num_queries,
        "datasets": {},
    }
    rows = []
    for dataset in bench_datasets():
        bundle, pairs = _region_reuse_queries(dataset, num_queries)
        per_dataset = {}
        # Chunks sized to the workload's region blocks: every chunk then
        # carries one region, so per-chunk dedup loses nothing.
        chunk = max(1, len(pairs) // UNIQUE_REGIONS)
        with ParallelExecutor(workers=WORKERS, chunk_size=chunk) as executor:
            for name, method in bundle.methods.items():
                seq_s, expected = _measure(method, pairs)
                bat_s, batched = _measure(
                    method, pairs, ParallelExecutor(workers=1)
                )
                par_s, parallel = _measure(method, pairs, executor)
                assert batched == expected, name
                assert parallel == expected, name
                seq_qps = len(pairs) / seq_s
                bat_qps = len(pairs) / bat_s
                par_qps = len(pairs) / par_s
                per_dataset[name] = {
                    "sequential_qps": round(seq_qps, 1),
                    "batched_qps": round(bat_qps, 1),
                    "parallel_qps": round(par_qps, 1),
                    "speedup_batched": round(bat_qps / seq_qps, 2),
                    "speedup_parallel": round(par_qps / seq_qps, 2),
                    "positives": sum(expected),
                }
                rows.append([
                    dataset, name, f"{seq_qps:.0f}", f"{bat_qps:.0f}",
                    f"{par_qps:.0f}", f"{bat_qps / seq_qps:.2f}x",
                    f"{par_qps / seq_qps:.2f}x",
                ])
                if name == SPEEDUP_METHOD and assert_floor:
                    # The acceptance floor: region dedup must carry the
                    # batch (and the executor must not squander it).
                    assert bat_qps >= 2.0 * seq_qps, (
                        f"{dataset}: batched {bat_qps:.0f} q/s < 2x "
                        f"sequential {seq_qps:.0f} q/s"
                    )
                    assert par_qps >= 2.0 * seq_qps, (
                        f"{dataset}: parallel {par_qps:.0f} q/s < 2x "
                        f"sequential {seq_qps:.0f} q/s"
                    )
        artifact["datasets"][dataset] = per_dataset
    report(format_table(
        ["dataset", "method", "seq q/s", "batch q/s", "par q/s",
         "batch speedup", "par speedup"],
        rows,
        title="Batched execution throughput "
        f"({num_queries} queries, {UNIQUE_REGIONS} regions, "
        f"{WORKERS} workers)",
    ))
    with open(results_dir / "batch_throughput.json", "w") as fh:
        json.dump(artifact, fh, indent=2)
